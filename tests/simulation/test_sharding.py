"""Sharded-engine tests: partitioning, delay streams, parity, digests, merge.

The determinism contract pinned here (see ``src/repro/simulation/sharding.py``):

* the merged aggregates of a sharded run equal the ``shards=1`` serial
  control exactly — whatever the shard count or partition strategy — on
  counts, verdicts and the fairness census (bit-for-bit), with only the
  float *means* compared at round-9 (summation order differs per shard);
* per-shard trace digests are pinned hex constants, replacing the global
  event order the classic engine pins in ``test_determinism.py`` (whose
  golden digests this PR must not move — asserted there, not here).
"""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_workload
from repro.simulation.network import ConstantDelay, UniformDelay
from repro.simulation.sharding import SenderDelayStream, shard_nodes
from repro.telemetry.collector import RunTelemetry, TelemetryOptions
from repro.workload.arrivals import poisson_arrivals, poisson_stream

DELAY = dict(low=0.05, high=0.15)

#: Pinned per-shard digests of the small traced scenario below — the
#: sharded counterpart of test_determinism's GOLDEN_DIGEST.  A change means
#: a shard's local event order (or its metrics summary) drifted.
SHARD_DIGESTS = (
    "cc85759fcb830e86805b2c451c18311f24df47da98a2ad6abd55356e84cccf76",
    "931fecb2b6989f79aa2acc31c8381cbdaeebc5d52faae8baa2d12e1413bd8a31",
)


def run_cell(shards, *, n=64, detail="telemetry", shard_by="range", **overrides):
    """The seeded telemetry cell the parity acceptance criterion names."""
    kwargs = dict(
        seed=42,
        delay_model=UniformDelay(**DELAY),
        metrics_detail=detail,
        shards=shards,
        shard_by=shard_by,
    )
    kwargs.update(overrides)
    workload = poisson_arrivals(n, 4 * n, rate=0.8, seed=23, hold=0.3)
    return run_workload("open-cube", n, workload, **kwargs)


class TestShardNodes:
    def test_range_partition_covers_all_nodes_contiguously(self):
        blocks = shard_nodes(10, 3)
        assert blocks == [(1, 2, 3, 4), (5, 6, 7), (8, 9, 10)]
        flat = [node for block in blocks for node in block]
        assert flat == list(range(1, 11))

    def test_single_shard_is_everything(self):
        assert shard_nodes(5, 1) == [(1, 2, 3, 4, 5)]

    def test_cube_partition_requires_powers_of_two(self):
        blocks = shard_nodes(16, 4, "cube")
        assert [len(b) for b in blocks] == [4, 4, 4, 4]
        with pytest.raises(ConfigurationError, match="power-of-two n"):
            shard_nodes(12, 4, "cube")
        with pytest.raises(ConfigurationError, match="power-of-two shard count"):
            shard_nodes(16, 3, "cube")

    def test_invalid_counts_and_strategies(self):
        with pytest.raises(ConfigurationError, match="shards must be >= 1"):
            shard_nodes(4, 0)
        with pytest.raises(ConfigurationError, match="cannot split"):
            shard_nodes(2, 3)
        with pytest.raises(ConfigurationError, match="unknown shard_by"):
            shard_nodes(4, 2, "random")


class TestSenderDelayStream:
    def test_deterministic_per_sender(self):
        a = [SenderDelayStream(42, 7).random() for _ in range(50)]
        b = [SenderDelayStream(42, 7).random() for _ in range(50)]
        assert a == b

    def test_streams_differ_across_senders_and_seeds(self):
        base = [SenderDelayStream(42, 7).random() for _ in range(10)]
        assert [SenderDelayStream(42, 8).random() for _ in range(10)] != base
        assert [SenderDelayStream(43, 7).random() for _ in range(10)] != base

    def test_values_in_unit_interval(self):
        stream = SenderDelayStream(0, 1)
        values = [stream.random() for _ in range(2000)]
        assert all(0.0 <= v < 1.0 for v in values)
        # A counter stream that actually mixes: no value repeats in 2k draws.
        assert len(set(values)) == len(values)

    def test_uniform_matches_random_random_formula(self):
        reference = SenderDelayStream(5, 3)
        stream = SenderDelayStream(5, 3)
        for _ in range(20):
            expected = 0.2 + (0.9 - 0.2) * reference.random()
            assert stream.uniform(0.2, 0.9) == expected

    def test_partition_independence_of_the_kth_draw(self):
        """The k-th draw is a pure function of (seed, sender, k) — no shared
        state, which is exactly why resharding cannot change any delay."""
        solo = SenderDelayStream(11, 4)
        interleaved = SenderDelayStream(11, 4)
        other = SenderDelayStream(11, 9)
        for _ in range(30):
            other.random()  # unrelated traffic between the draws
            assert interleaved.random() == solo.random()


class TestMinDelayLookahead:
    """Satellite: ``min_delay()`` is a true positive lower bound of sample().

    One property test per delay model: thousands of seeded samples across
    many (sender, dest) pairs, every one ``>= min_delay()``, and the bound
    is *attained* within the sketch of a bucket (it is a floor, not a
    conservative guess) for the models whose minimum is reachable.
    """

    def sample_floor(self, model, draws=3000):
        stream = SenderDelayStream(1, 1)
        samples = [
            model.sample(1 + (i % 16), 1 + ((i * 7) % 16), stream)
            for i in range(draws)
        ]
        return min(samples), samples

    def test_constant(self):
        model = ConstantDelay(0.7)
        floor, samples = self.sample_floor(model, draws=50)
        assert model.min_delay() == 0.7
        assert floor == 0.7 and all(s == 0.7 for s in samples)

    def test_uniform(self):
        model = UniformDelay(0.3, 1.1)
        floor, samples = self.sample_floor(model)
        assert model.min_delay() == 0.3
        assert all(s >= 0.3 for s in samples)
        assert floor == pytest.approx(0.3, abs=0.01)  # the bound is tight

    def test_uniform_low_zero_reports_no_lookahead(self):
        assert UniformDelay(0.0, 1.0).min_delay() == 0.0

    def test_per_hop(self):
        from repro.simulation.network import PerHopDelay

        model = PerHopDelay(base=0.2, jitter=0.3, dimensions=4)
        floor, samples = self.sample_floor(model)
        # Minimum one hop even for sender == dest pairs, so base is a true
        # lower bound and attained on adjacent pairs with tiny jitter draws.
        assert model.min_delay() == 0.2
        assert all(s >= 0.2 for s in samples)
        assert floor == pytest.approx(0.2, abs=0.02)

    def test_pareto(self):
        from repro.simulation.network import ParetoDelay

        model = ParetoDelay(alpha=1.5, scale=0.25, cap=8.0)
        floor, samples = self.sample_floor(model)
        # 1 - u in (0, 1] so sample >= scale exactly, attained at u == 0.
        assert model.min_delay() == 0.25
        assert all(s >= 0.25 for s in samples)
        assert floor == pytest.approx(0.25, abs=0.02)

    def test_min_delay_never_exceeds_max_delay(self):
        from repro.simulation.network import ParetoDelay, PerHopDelay

        for model in (
            ConstantDelay(1.0),
            UniformDelay(0.1, 0.9),
            PerHopDelay(base=0.1, jitter=0.2, dimensions=6),
            ParetoDelay(alpha=2.0, scale=0.2, cap=5.0),
        ):
            assert 0.0 <= model.min_delay() <= model.max_delay


def parity_keys(result):
    """The exactly-comparable slice of a telemetry RunResult."""
    return {
        "requests_issued": result.requests_issued,
        "requests_granted": result.requests_granted,
        "total_messages": result.total_messages,
        "overhead_messages": result.overhead_messages,
        "safety_ok": result.safety_ok,
        "liveness_ok": result.liveness_ok,
        "analysis_ok": result.analysis_ok,
        "safety": result.online_checks["safety"],
        "fairness": result.fairness,
        "starved": result.online_checks["liveness"]["starved"],
        "excused": result.online_checks["liveness"]["excused"],
        "waiting_time": result.quantiles["waiting_time"],
        "cs_hold": result.quantiles["cs_hold"],
        "messages_count": result.quantiles["messages_per_request"]["count"],
        "mean_waiting_round9": round(result.mean_waiting_time, 9),
    }


class TestShardedVsSerialParity:
    """The acceptance criterion: merged sharded == shards=1 serial control."""

    @pytest.mark.parametrize("shards", [2, 4])
    def test_telemetry_parity_n64(self, shards):
        control = run_cell(1)
        sharded = run_cell(shards)
        assert parity_keys(sharded) == parity_keys(control)
        assert sharded.extra["shards"] == shards
        assert sharded.extra["sync_rounds"] > 0
        assert sharded.extra["lookahead"] == DELAY["low"]

    def test_cube_partitioning_same_figures(self):
        control = run_cell(1)
        sharded = run_cell(4, shard_by="cube")
        assert parity_keys(sharded) == parity_keys(control)

    def test_counters_mode_parity(self):
        control = run_cell(1, detail="counters")
        sharded = run_cell(3, detail="counters")
        for attribute in ("requests_issued", "requests_granted", "total_messages"):
            assert getattr(sharded, attribute) == getattr(control, attribute)
        # Counters mode skips analysis in both engines.
        assert sharded.safety_ok is None and control.safety_ok is None
        assert round(sharded.mean_waiting_time, 9) == round(
            control.mean_waiting_time, 9
        )

    def test_streamed_feed_parity(self):
        workload = poisson_stream(32, 96, rate=0.8, seed=23, hold=0.3)
        runs = [
            run_workload(
                "open-cube",
                32,
                workload,
                seed=42,
                delay_model=UniformDelay(**DELAY),
                metrics_detail="telemetry",
                shards=shards,
                feed_window=8,
            )
            for shards in (1, 2)
        ]
        assert parity_keys(runs[0]) == parity_keys(runs[1])
        assert all(run.streamed for run in runs)

    def test_fairness_census_union_is_bitwise(self):
        """Satellite: sharded fairness figures == serial bit-for-bit — the
        jain index is integer arithmetic and the per-node starvation gaps
        come from an identical protocol evolution, so no rounding slack."""
        control = run_cell(1)
        sharded = run_cell(4)
        assert sharded.fairness == control.fairness
        assert isinstance(sharded.fairness["jain_index"], float)

    def test_merged_summary_matches_control_summary(self):
        """The bench gate's comparison surface: cluster.metrics.summary()."""
        control = run_cell(1)
        sharded = run_cell(2)
        ours = sharded.cluster.metrics.summary()
        theirs = control.cluster.metrics.summary()
        for key in ("total_messages", "dropped_messages", "messages_by_kind",
                    "requests_issued", "requests_granted", "failures", "recoveries"):
            assert ours[key] == theirs[key]
        assert ours["mean_waiting_time"] == pytest.approx(
            theirs["mean_waiting_time"], rel=1e-9
        )


class TestSeamWindowBatching:
    """Tentpole: seam windows batch sync rounds without moving an event.

    Every cell runs the same traced workload under both window rules (and
    against the ``shards=1`` control): per-shard digests byte-identical,
    merged aggregates equal, and the seam rule strictly cheaper in
    synchronisation rounds.
    """

    CELLS = [(2, "range"), (3, "range"), (4, "range"), (2, "cube"), (4, "cube")]

    @pytest.mark.parametrize("shards,shard_by", CELLS)
    def test_digest_parity_with_strictly_fewer_rounds(self, shards, shard_by):
        classic = run_cell(
            shards,
            n=32,
            detail="counters",
            shard_by=shard_by,
            trace=True,
            shard_window="classic",
        )
        seam = run_cell(shards, n=32, detail="counters", shard_by=shard_by, trace=True)
        assert seam.extra["shard_digests"] == classic.extra["shard_digests"]
        assert seam.extra["sync_rounds"] < classic.extra["sync_rounds"]
        assert seam.extra["shard_window"] == "seam"
        assert classic.extra["shard_window"] == "classic"

    @pytest.mark.parametrize("shards", [2, 3, 4])
    def test_seam_telemetry_equals_serial_control(self, shards):
        control = run_cell(1, n=32)
        seam = run_cell(shards, n=32)
        assert parity_keys(seam) == parity_keys(control)
        assert seam.extra["shard_window"] == "seam"

    def test_single_shard_seam_quiesces_in_one_window(self):
        """One shard cannot receive cross traffic: the seam horizon is
        unbounded and the whole run is a single window."""
        result = run_cell(1, n=16)
        assert result.extra["sync_rounds"] == 1

    def test_unknown_window_rule_rejected(self):
        with pytest.raises(ConfigurationError, match="shard_window"):
            run_cell(2, n=16, shard_window="eager")


class TestSeamWindowSoundness:
    """Boundary-bound property: no cross message ever lands in a shard's
    past.  Spies on the coordinator's pipe traffic (the worker processes
    fork after the patch, so only parent-side frames are recorded) and
    replays the causality argument against the actual windows."""

    def test_cross_messages_never_land_in_a_shards_past(self, monkeypatch):
        import math

        from multiprocessing.connection import Connection

        from repro.simulation import sharding

        traffic = []
        real_send = Connection.send

        def spy_send(self, obj):
            traffic.append(("send", self.fileno(), obj))
            return real_send(self, obj)

        fileno_to_shard = {}
        real_recv = sharding._recv

        def spy_recv(conn, index):
            fileno_to_shard[conn.fileno()] = index
            reply = real_recv(conn, index)
            traffic.append(("recv", index, reply))
            return reply

        monkeypatch.setattr(Connection, "send", spy_send)
        monkeypatch.setattr(sharding, "_recv", spy_recv)

        result = run_cell(2, n=16)
        lookahead = result.extra["lookahead"]
        assert result.extra["sync_rounds"] > 1

        # A shard's processed frontier after a window sits strictly below
        # min(coordinator horizon, its own boomerang cut) — the cut fires
        # at first-cross-emission + 2 lookaheads, and the first emission is
        # bounded by the window's earliest outbox ``sent_at``.
        injected = 0
        floors = {}  # shard -> upper bound on its processed frontier
        pending = {}  # shard -> horizon of the window it is running
        for kind, key, frame in traffic:
            if kind == "send" and frame[0] == "window":
                shard = fileno_to_shard[key]
                _, horizon, inbound, _budget = frame
                for arrival, _sender, _dest, _message, sent_at in inbound:
                    injected += 1
                    # Each hop costs at least a lookahead ...
                    assert arrival >= sent_at + lookahead - 1e-12
                    # ... and never lands below the receiver's frontier.
                    assert arrival >= floors.get(shard, 0.0) - 1e-12
                pending[shard] = horizon
            elif kind == "recv" and frame[0] == "window":
                _, _next_time, _bound, outbox, _processed = frame
                cut = (
                    min(item[4] for item in outbox) + 2.0 * lookahead
                    if outbox
                    else math.inf
                )
                floors[key] = min(pending[key], cut)
        assert injected > 0  # the cell actually exercised the seam


class TestCoordinatorFailureHandling:
    """Satellite: worker death and worker-side errors surface with the
    shard index — never a hang or a bare EOFError."""

    def test_sigkilled_worker_surfaces_index_and_exit_code(self, monkeypatch):
        import os
        import signal

        from repro.exceptions import SimulationError
        from repro.simulation import sharding

        real_main = sharding._shard_worker_main

        def doomed_main(conn, shard_index, cfg):
            if shard_index == 1:
                conn.send(("ready", 0.0, 0.0, 0.0, 0.0))
                conn.recv()  # first window command, then die mid-run
                os.kill(os.getpid(), signal.SIGKILL)
            return real_main(conn, shard_index, cfg)

        monkeypatch.setattr(sharding, "_shard_worker_main", doomed_main)
        with pytest.raises(SimulationError, match="shard 1 worker died") as excinfo:
            run_cell(2, n=16)
        message = str(excinfo.value)
        assert "exit code -9" in message  # -SIGKILL
        assert "last window horizon" in message

    def test_worker_sends_error_frame_then_exits_nonzero(self):
        """The crash path itself, in-process: a structured error frame on
        the pipe, then a non-zero exit for infrastructure watching codes."""
        from repro.simulation.sharding import _shard_worker_main

        class FakeConn:
            def __init__(self):
                self.frames = []

            def send(self, obj):
                self.frames.append(obj)

            def close(self):
                self.closed = True

        cfg = dict(
            algorithm="no-such-algorithm",
            n=8,
            local_nodes=(1, 2, 3, 4),
            seed=1,
            delay_model=UniformDelay(**DELAY),
            trace=False,
            metrics_detail="counters",
            telemetry_options=None,
            cluster_kwargs={},
            node_options={},
            workload=poisson_arrivals(8, 8, rate=0.5, seed=1, hold=0.2),
            stream=False,
            feed_window=8,
            shard_window="seam",
        )
        conn = FakeConn()
        with pytest.raises(SystemExit) as excinfo:
            _shard_worker_main(conn, 0, cfg)
        assert excinfo.value.code == 1
        kind, error_type, message = conn.frames[-1]
        assert kind == "error"
        assert "no-such-algorithm" in message
        assert conn.closed

    def test_error_frame_becomes_a_simulation_error_naming_the_shard(self):
        from repro.exceptions import SimulationError
        from repro.simulation import sharding

        class FrameConn:
            def recv(self):
                return ("error", "RuntimeError", "boom")

        with pytest.raises(
            SimulationError, match="shard 3 worker failed: RuntimeError: boom"
        ):
            sharding._recv(FrameConn(), 3)

    def test_pipe_eof_is_a_worker_death_with_the_shard_index(self):
        from repro.simulation import sharding

        class DeadConn:
            def recv(self):
                raise EOFError

        with pytest.raises(sharding._WorkerDied) as excinfo:
            sharding._recv(DeadConn(), 2)
        assert excinfo.value.shard_index == 2


class TestPerShardDigests:
    def scenario(self, **overrides):
        workload = poisson_arrivals(8, 16, rate=0.5, seed=5, hold=0.4)
        kwargs = dict(
            seed=7,
            delay_model=UniformDelay(**DELAY),
            metrics_detail="counters",
            shards=2,
            trace=True,
        )
        kwargs.update(overrides)
        return run_workload("open-cube", 8, workload, **kwargs)

    def test_pinned_shard_digests(self):
        result = self.scenario()
        assert tuple(result.extra["shard_digests"]) == SHARD_DIGESTS

    def test_classic_window_produces_the_same_pinned_digests(self):
        """The window rule batches synchronisation, never event order: the
        seam default and the classic one-event rule hash to the same pinned
        constants — only ``sync_rounds`` may differ between them."""
        result = self.scenario(shard_window="classic")
        assert tuple(result.extra["shard_digests"]) == SHARD_DIGESTS

    def test_digests_reproduce_across_runs(self):
        assert (
            self.scenario().extra["shard_digests"]
            == self.scenario().extra["shard_digests"]
        )

    def test_untraced_runs_carry_no_digests(self):
        result = run_cell(2, n=16)
        assert result.extra["shard_digests"] is None


class TestShardedValidation:
    def test_full_detail_rejected(self):
        with pytest.raises(ConfigurationError, match="metrics_detail"):
            run_cell(2, detail="full")

    def test_zero_lookahead_rejected(self):
        with pytest.raises(ConfigurationError, match="positive lookahead"):
            run_cell(2, delay_model=UniformDelay(0.0, 1.0))

    def test_serial_accounting_rejected(self):
        with pytest.raises(ConfigurationError, match="serial"):
            run_cell(2, serial=True)

    def test_fifo_rejected(self):
        with pytest.raises(ConfigurationError, match="FIFO"):
            run_cell(2, fifo=True)

    def test_failure_schedules_rejected(self):
        from repro.simulation.failures import FailureEvent, FailureSchedule

        schedule = FailureSchedule(events=[FailureEvent(node=3, fail_at=5.0)])
        with pytest.raises(ConfigurationError, match="failure schedules"):
            run_cell(2, failure_schedule=schedule)

    def test_network_faults_rejected(self):
        from repro.simulation.network import NetworkFaults

        with pytest.raises(ConfigurationError, match="network faults"):
            run_cell(2, network_faults=NetworkFaults(loss_rate=0.1))

    def test_more_shards_than_nodes_rejected(self):
        with pytest.raises(ConfigurationError, match="cannot split"):
            run_cell(65, n=64)

    def test_series_sampler_rejected(self):
        with pytest.raises(ConfigurationError, match="series"):
            run_cell(2, telemetry={"series_cadence": 5.0})

    def test_ft_algorithm_shards_cleanly_without_crashes(self):
        """The FT algorithm schedules nothing at build time (its detectors
        are reactive), so it shards — crash schedules stay rejected above,
        and a crash-free FT run matches its serial control exactly."""
        workload = poisson_arrivals(8, 24, rate=0.3, seed=5, hold=0.4)
        runs = [
            run_workload(
                "open-cube-ft",
                8,
                workload,
                seed=7,
                delay_model=UniformDelay(**DELAY),
                metrics_detail="telemetry",
                shards=shards,
            )
            for shards in (1, 2)
        ]
        assert parity_keys(runs[0]) == parity_keys(runs[1])
        assert runs[1].overhead_messages == 0  # no crashes -> no FT traffic


class TestVerdictConjunction:
    """Satellite: merging is a conjunction — one bad shard poisons the run."""

    def hub(self):
        hub = RunTelemetry(TelemetryOptions())
        hub.on_issue(1, 1, 1.0, 0)
        hub.on_grant(1, 2.0)
        hub.on_cs_enter(1, 2.0)
        hub.on_cs_exit(1, 2.5)
        hub.finalize(10.0, 4)
        return hub

    def violating_hub(self):
        hub = RunTelemetry(TelemetryOptions())
        hub.on_issue(2, 2, 1.0, 0)
        hub.on_issue(3, 3, 1.1, 1)
        hub.on_grant(2, 2.0)
        hub.on_grant(3, 2.1)
        hub.on_cs_enter(2, 2.0)
        hub.on_cs_enter(3, 2.1)  # overlap: shard-local safety violation
        hub.on_cs_exit(2, 2.4)
        hub.on_cs_exit(3, 2.5)
        hub.finalize(10.0, 9)
        return hub

    def test_shard_local_violation_fails_the_merged_verdict(self):
        from repro.simulation.sharding import _merge_telemetry

        safety, liveness, fairness, quantiles, merged = _merge_telemetry(
            [self.hub(), self.violating_hub(), self.hub()], None
        )
        assert safety["ok"] is False
        assert safety["violations"] == 1
        assert safety["max_concurrency"] == 2
        assert safety["first_violation"]["time"] == 2.1
        assert liveness["ok"] is True  # liveness was fine on every shard
        assert liveness["issued"] == 4 and liveness["granted"] == 4

    def test_all_clean_shards_merge_clean(self):
        from repro.simulation.sharding import _merge_telemetry

        safety, liveness, fairness, quantiles, merged = _merge_telemetry(
            [self.hub(), self.hub(), self.hub()], None
        )
        assert safety["ok"] is True and liveness["ok"] is True
        # Three identical shards: sketches merged across all of them.
        assert quantiles["waiting_time"]["count"] == 3
        assert fairness["total_grants"] == 3

    def test_histogram_merge_is_shard_order_independent(self):
        """Satellite: ≥3 shards, any merge order, identical sketch state."""
        from repro.simulation.sharding import _merge_telemetry

        hubs = lambda: [self.hub(), self.violating_hub(), self.hub()]
        orders = []
        for rotation in range(3):
            batch = hubs()
            batch = batch[rotation:] + batch[:rotation]
            _, _, _, quantiles, _ = _merge_telemetry(batch, None)
            orders.append(quantiles)
        assert orders[0] == orders[1] == orders[2]


class TestScenarioSpecSharding:
    def spec(self, **overrides):
        from repro.scenarios.spec import DelaySpec, ScenarioSpec, WorkloadSpec

        fields = dict(
            algorithm="open-cube",
            n=16,
            workload=WorkloadSpec(
                "poisson", {"count": 48, "rate": 0.8, "seed": 23, "hold": 0.3}
            ),
            delay=DelaySpec("uniform", {"low": 0.05, "high": 0.15}),
            seed=42,
            metrics_detail="telemetry",
            shards=2,
            shard_by="cube",
        )
        fields.update(overrides)
        return ScenarioSpec(**fields)

    def test_round_trips_through_json(self):
        import json

        from repro.scenarios.spec import ScenarioSpec

        spec = self.spec()
        assert ScenarioSpec.from_dict(json.loads(json.dumps(spec.to_dict()))) == spec

    def test_dicts_without_shard_fields_default_to_serial(self):
        from repro.scenarios.spec import ScenarioSpec

        data = self.spec().to_dict()
        del data["shards"], data["shard_by"]
        spec = ScenarioSpec.from_dict(data)
        assert spec.shards == 0 and spec.shard_by == "range"

    def test_row_carries_shard_columns_and_matches_serial_control(self):
        sharded_row = self.spec().run().row()
        control_row = self.spec(shards=1, shard_by="range").run().row()
        assert sharded_row["shards"] == 2
        assert sharded_row["shard_by"] == "cube"
        assert sharded_row["sync_rounds"] > 0
        assert sharded_row["merge_s"] >= 0.0
        assert sharded_row["lookahead"] == 0.05
        for key in (
            "requests",
            "requests_granted",
            "total_messages",
            "safety_ok",
            "liveness_ok",
            "jain_index",
            "waiting_p50",
            "waiting_p90",
            "waiting_p99",
            "max_node_starvation_gap",
        ):
            assert sharded_row[key] == control_row[key], key

    def test_serial_rows_carry_no_shard_columns(self):
        row = self.spec(shards=0).run().row()
        assert "shards" not in row and "sync_rounds" not in row

    def test_shard_window_round_trips_and_defaults_to_seam(self):
        import json

        from repro.scenarios.spec import ScenarioSpec

        data = self.spec(shard_window="classic").to_dict()
        assert data["shard_window"] == "classic"
        restored = ScenarioSpec.from_dict(json.loads(json.dumps(data)))
        assert restored.shard_window == "classic"
        # Dicts written before the knob existed replay under the default.
        del data["shard_window"]
        assert ScenarioSpec.from_dict(data).shard_window == "seam"

    def test_row_reports_window_rule_and_batching_figures(self):
        seam_row = self.spec().run().row()
        classic_row = self.spec(shard_window="classic").run().row()
        assert seam_row["shard_window"] == "seam"
        assert classic_row["shard_window"] == "classic"
        assert seam_row["sync_rounds"] < classic_row["sync_rounds"]
        for row in (seam_row, classic_row):
            assert row["events_per_window"] == pytest.approx(
                row["events"] / row["sync_rounds"], abs=0.01
            )
        assert seam_row["events_per_window"] > classic_row["events_per_window"]

    def test_rows_bracket_rss_with_a_delta_column(self):
        """Satellite: ``peak_rss_mb`` is the process high-water mark (it is
        monotone across cells); ``rss_delta_mb`` is this cell's own growth
        of it, so sweep rows no longer attribute earlier cells' footprint
        to whichever cell happens to run later."""
        for spec in (self.spec(), self.spec(shards=0)):
            row = spec.run().row()
            assert row["rss_delta_mb"] >= 0.0
            assert row["peak_rss_mb"] >= row["rss_delta_mb"]
