"""Tests for delay models, channel ordering, metrics and tracing."""

from __future__ import annotations

import random

import pytest

from repro.exceptions import ConfigurationError
from repro.simulation.metrics import MetricsCollector
from repro.simulation.network import ChannelState, ConstantDelay, PerHopDelay, UniformDelay
from repro.simulation.trace import NullTracer, TraceCategory, Tracer


class TestDelayModels:
    def test_constant_delay(self):
        model = ConstantDelay(2.5)
        rng = random.Random(0)
        assert model.sample(1, 2, rng) == 2.5
        assert model.max_delay == 2.5

    def test_constant_delay_must_be_positive(self):
        with pytest.raises(ConfigurationError):
            ConstantDelay(0.0)

    def test_uniform_delay_within_bounds(self):
        model = UniformDelay(0.5, 2.0)
        rng = random.Random(1)
        samples = [model.sample(1, 2, rng) for _ in range(200)]
        assert all(0.5 <= s <= 2.0 for s in samples)
        assert model.max_delay == 2.0

    def test_uniform_delay_invalid_bounds(self):
        with pytest.raises(ConfigurationError):
            UniformDelay(2.0, 1.0)
        with pytest.raises(ConfigurationError):
            UniformDelay(-1.0, 1.0)

    def test_per_hop_delay_respects_bound(self):
        model = PerHopDelay(base=0.2, jitter=0.1, dimensions=5)
        rng = random.Random(2)
        for sender in range(1, 33):
            sample = model.sample(sender, 33 - sender, rng)
            assert 0 < sample <= model.max_delay

    def test_per_hop_delay_grows_with_hamming_distance(self):
        model = PerHopDelay(base=1.0, jitter=0.0, dimensions=5)
        rng = random.Random(0)
        near = model.sample(1, 2, rng)  # 1 bit apart
        far = model.sample(1, 32, rng)  # 5 bits apart
        assert far > near

    def test_per_hop_invalid_configuration(self):
        with pytest.raises(ConfigurationError):
            PerHopDelay(base=0.0)


class TestChannelState:
    def test_non_fifo_allows_overtaking(self):
        channel = ChannelState(fifo=False)
        first = channel.delivery_time(1, 2, send_time=0.0, delay=5.0)
        second = channel.delivery_time(1, 2, send_time=1.0, delay=1.0)
        assert second < first

    def test_fifo_prevents_overtaking(self):
        channel = ChannelState(fifo=True)
        first = channel.delivery_time(1, 2, send_time=0.0, delay=5.0)
        second = channel.delivery_time(1, 2, send_time=1.0, delay=1.0)
        assert second >= first

    def test_fifo_is_per_ordered_pair(self):
        channel = ChannelState(fifo=True)
        channel.delivery_time(1, 2, send_time=0.0, delay=5.0)
        other_direction = channel.delivery_time(2, 1, send_time=1.0, delay=1.0)
        assert other_direction == 2.0

    def test_reset_clears_history(self):
        channel = ChannelState(fifo=True)
        channel.delivery_time(1, 2, send_time=0.0, delay=5.0)
        channel.reset()
        assert channel.delivery_time(1, 2, send_time=0.0, delay=1.0) == 1.0


class TestMetricsCollector:
    def test_send_counting_by_kind_and_sender(self):
        metrics = MetricsCollector()
        metrics.record_send(1.0, 1, 2, "RequestMessage")
        metrics.record_send(2.0, 1, 3, "TokenMessage")
        metrics.record_send(3.0, 2, 1, "RequestMessage")
        assert metrics.total_messages() == 3
        assert metrics.messages_by_kind["RequestMessage"] == 2
        assert metrics.messages_by_sender[1] == 2
        assert metrics.messages_of_kinds({"TokenMessage"}) == 1

    def test_request_lifecycle(self):
        metrics = MetricsCollector()
        metrics.record_request_issued(1, node=5, time=1.0)
        metrics.record_send(1.5, 5, 1, "RequestMessage")
        metrics.record_request_granted(1, time=3.0)
        metrics.record_request_released(1, time=4.0)
        record = metrics.requests[1]
        assert record.satisfied
        assert record.waiting_time == 2.0
        assert metrics.satisfied_requests() == [record]
        assert metrics.unsatisfied_requests() == []

    def test_messages_per_request_serial_attribution(self):
        metrics = MetricsCollector()
        metrics.record_request_issued(1, node=2, time=1.0)
        metrics.record_send(1.1, 2, 1, "RequestMessage")
        metrics.record_send(1.2, 1, 2, "TokenMessage")
        metrics.record_request_granted(1, time=1.3)
        metrics.record_send(1.9, 2, 1, "TokenMessage")  # return after CS
        metrics.record_request_issued(2, node=3, time=10.0)
        metrics.record_send(10.1, 3, 1, "RequestMessage")
        metrics.record_request_granted(2, time=10.5)
        assert metrics.messages_per_request() == [3, 1]

    def test_mean_messages_and_waiting(self):
        metrics = MetricsCollector()
        metrics.record_request_issued(1, node=2, time=0.0)
        metrics.record_send(0.5, 2, 1, "RequestMessage")
        metrics.record_request_granted(1, time=2.0)
        assert metrics.mean_messages_per_request() == 1.0
        assert metrics.mean_waiting_time() == 2.0

    def test_cs_interval_tracking(self):
        metrics = MetricsCollector()
        metrics.record_cs_enter(4, 1.0)
        metrics.record_cs_exit(4, 2.0)
        assert metrics.cs_intervals[0].exited_at == 2.0

    def test_failures_and_summary(self):
        metrics = MetricsCollector()
        metrics.record_failure(3, 1.0)
        metrics.record_recovery(3, 2.0)
        summary = metrics.summary()
        assert summary["failures"] == 1
        assert summary["recoveries"] == 1

    def test_per_node_request_counts(self):
        metrics = MetricsCollector()
        metrics.record_request_issued(1, node=2, time=0.0)
        metrics.record_request_issued(2, node=2, time=1.0)
        metrics.record_request_issued(3, node=7, time=2.0)
        assert metrics.per_node_request_counts() == {2: 2, 7: 1}

    def test_counters_mode_counts_without_records(self):
        metrics = MetricsCollector(detail="counters")
        metrics.record_send(1.0, 1, 2, "RequestMessage")
        metrics.record_send(2.0, 1, 3, "TokenMessage", dropped=True)
        assert metrics.sent_messages == []
        assert metrics.total_messages() == 2
        assert metrics.total_messages(include_dropped=False) == 1
        assert metrics.messages_by_kind["RequestMessage"] == 1
        assert metrics.messages_by_sender[1] == 2
        assert metrics.dropped_messages == 1

    def test_counters_mode_per_request_attribution_matches_full(self):
        tallies = {}
        for detail in ("full", "counters"):
            metrics = MetricsCollector(detail=detail)
            metrics.record_request_issued(1, node=2, time=1.0)
            metrics.record_send(1.1, 2, 1, "RequestMessage")
            metrics.record_send(1.2, 1, 2, "TokenMessage")
            metrics.record_request_granted(1, time=1.3)
            metrics.record_send(1.9, 2, 1, "TokenMessage")
            metrics.record_request_issued(2, node=3, time=10.0)
            metrics.record_send(10.1, 3, 1, "RequestMessage")
            metrics.record_request_granted(2, time=10.5)
            tallies[detail] = (metrics.messages_per_request(), metrics.summary())
        assert tallies["counters"] == tallies["full"]

    def test_invalid_detail_rejected(self):
        with pytest.raises(ConfigurationError):
            MetricsCollector(detail="everything")


class TestTracer:
    def test_records_and_filters(self):
        tracer = Tracer()
        tracer.emit(1.0, TraceCategory.SEND, 1, dest=2)
        tracer.emit(2.0, TraceCategory.CS_ENTER, 3)
        assert len(tracer) == 2
        assert len(tracer.by_category(TraceCategory.SEND)) == 1
        assert len(tracer.for_node(3)) == 1

    def test_disabled_tracer_records_nothing(self):
        tracer = Tracer(enabled=False)
        tracer.emit(1.0, TraceCategory.SEND, 1)
        assert len(tracer) == 0

    def test_max_records_truncation(self):
        tracer = Tracer(max_records=2)
        for i in range(5):
            tracer.emit(float(i), TraceCategory.INFO, None)
        assert len(tracer) == 2
        assert tracer.truncated

    def test_format_renders_every_record(self):
        tracer = Tracer()
        tracer.emit(1.0, TraceCategory.SEND, 1, dest=2, kind="RequestMessage")
        text = tracer.format()
        assert "send" in text and "dest=2" in text

    def test_null_tracer_keeps_the_read_api(self):
        tracer = NullTracer()
        tracer.emit(1.0, TraceCategory.SEND, 1, dest=2)
        assert len(tracer) == 0
        assert not tracer.enabled
        assert tracer.by_category(TraceCategory.SEND) == []
        assert tracer.format() == ""
