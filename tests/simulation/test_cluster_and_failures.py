"""Tests of the simulated cluster plumbing and failure injection."""

from __future__ import annotations

import pytest

from repro.core.builders import build_fault_tolerant_cluster, build_opencube_cluster
from repro.exceptions import ConfigurationError, SimulationError
from repro.simulation.cluster import SimulatedCluster
from repro.simulation.failures import FailurePlanner, FailureSchedule
from repro.simulation.network import ConstantDelay
from repro.simulation.trace import TraceCategory


class TestClusterBasics:
    def test_empty_cluster_rejected(self):
        with pytest.raises(SimulationError):
            SimulatedCluster({})

    def test_unknown_request_target_rejected(self):
        cluster = build_opencube_cluster(4)
        with pytest.raises(SimulationError):
            cluster.request_cs(9)

    def test_send_to_unknown_node_rejected(self):
        cluster = build_opencube_cluster(4)
        with pytest.raises(SimulationError):
            cluster.environment(1).send(99, object())

    def test_auto_release_after_hold(self):
        cluster = build_opencube_cluster(4, delay_model=ConstantDelay(1.0))
        cluster.request_cs(1, at=1.0, hold=2.0)
        cluster.run_until_quiescent()
        record = next(iter(cluster.metrics.requests.values()))
        assert record.released_at == pytest.approx(record.granted_at + 2.0)

    def test_manual_release(self):
        cluster = build_opencube_cluster(4, delay_model=ConstantDelay(1.0))
        cluster.request_cs(1, at=1.0, auto_release=False)
        cluster.run_until_quiescent()
        assert cluster.node(1).in_critical_section
        cluster.release_cs(1)
        cluster.run_until_quiescent()
        assert not cluster.node(1).in_critical_section

    def test_grant_listener_invoked(self):
        cluster = build_opencube_cluster(4, delay_model=ConstantDelay(1.0))
        grants = []
        cluster.add_grant_listener(lambda node, time: grants.append((node, time)))
        cluster.request_cs(3, at=1.0, hold=0.5)
        cluster.run_until_quiescent()
        assert grants and grants[0][0] == 3

    def test_trace_contains_full_request_lifecycle(self):
        cluster = build_opencube_cluster(8, delay_model=ConstantDelay(1.0))
        cluster.request_cs(6, at=1.0, hold=0.5)
        cluster.run_until_quiescent()
        categories = {record.category for record in cluster.tracer}
        assert {
            TraceCategory.REQUEST,
            TraceCategory.SEND,
            TraceCategory.DELIVER,
            TraceCategory.CS_ENTER,
            TraceCategory.CS_EXIT,
        } <= categories

    def test_father_map_and_snapshots(self):
        cluster = build_opencube_cluster(8)
        fathers = cluster.father_map()
        assert fathers[1] is None and fathers[8] == 7
        assert set(cluster.snapshots()) == set(range(1, 9))


class TestFailureInjection:
    def test_messages_to_failed_node_are_dropped(self):
        cluster = build_fault_tolerant_cluster(8, delay_model=ConstantDelay(1.0))
        cluster.fail_node(5, at=0.5)
        cluster.request_cs(6, at=1.0, hold=0.5)  # father of 6 is 5
        cluster.run(until=3.0)
        assert cluster.metrics.dropped_messages >= 1

    def test_drops_are_accounted_at_delivery_not_at_send(self):
        """Fail-stop loses messages in transit: the send itself is recorded
        as a normal send, and the drop counter moves only when the delivery
        reaches the crashed node."""
        cluster = build_fault_tolerant_cluster(8, delay_model=ConstantDelay(1.0))
        cluster.fail_node(5, at=0.5)
        cluster.request_cs(6, at=1.0, hold=0.5)  # father of 6 is 5
        cluster.run(until=1.5)  # request sent at t=1.0, arrives at t=2.0
        assert cluster.metrics.total_messages() >= 1
        assert cluster.metrics.dropped_messages == 0
        assert all(not record.dropped for record in cluster.metrics.sent_messages)
        cluster.run(until=2.5)  # the delivery now hits the crashed node
        assert cluster.metrics.dropped_messages >= 1
        # Send-time records never carry the dropped flag.
        assert all(not record.dropped for record in cluster.metrics.sent_messages)

    def test_failed_node_ignores_timers_and_requests(self):
        cluster = build_fault_tolerant_cluster(8, delay_model=ConstantDelay(1.0))
        cluster.request_cs(5, at=1.0, hold=50.0)
        cluster.run(until=10.0)
        cluster.fail_node(5)
        assert not cluster.node(5).in_critical_section
        cluster.run_until_quiescent()
        assert cluster.is_failed(5)

    def test_recover_unfailed_node_is_noop(self):
        cluster = build_fault_tolerant_cluster(8)
        cluster.recover_node(3)
        assert not cluster.is_failed(3)
        assert cluster.metrics.recoveries == []

    def test_double_failure_is_idempotent(self):
        cluster = build_fault_tolerant_cluster(8)
        cluster.fail_node(3)
        cluster.fail_node(3)
        assert len(cluster.metrics.failures) == 1

    def test_requests_issued_by_failed_node_are_skipped(self):
        cluster = build_fault_tolerant_cluster(8, delay_model=ConstantDelay(1.0))
        cluster.fail_node(6, at=0.5)
        cluster.request_cs(6, at=1.0, hold=0.5)
        cluster.run_until_quiescent()
        assert len(cluster.metrics.requests) == 0


class TestFailurePlanner:
    def test_periodic_failures_never_repeat_consecutively(self):
        planner = FailurePlanner(16, seed=3)
        schedule = planner.periodic_failures(20, start=10.0, spacing=5.0, recover_after=2.0)
        nodes = [event.node for event in schedule]
        assert all(a != b for a, b in zip(nodes, nodes[1:]))
        assert len(schedule) == 20

    def test_protected_nodes_are_never_failed(self):
        planner = FailurePlanner(8, seed=1, protected_nodes=(1, 2))
        schedule = planner.periodic_failures(30, start=1.0, spacing=1.0, recover_after=0.5)
        assert not ({1, 2} & schedule.nodes())

    def test_periodic_without_recovery_never_recrashes_a_down_node(self):
        planner = FailurePlanner(16, seed=3)
        schedule = planner.periodic_failures(15, start=10.0, spacing=5.0)
        # Without recoveries every crashed node stays down, so all 15 crash
        # targets must be distinct — and the schedule validates cleanly.
        assert len(schedule.nodes()) == 15
        schedule.validate()

    def test_periodic_without_recovery_runs_out_of_live_nodes(self):
        planner = FailurePlanner(16, seed=3)
        with pytest.raises(ConfigurationError, match="no node left to fail"):
            planner.periodic_failures(17, start=10.0, spacing=5.0)

    def test_burst_failures_are_distinct(self):
        planner = FailurePlanner(16, seed=5)
        schedule = planner.burst_failures(4, at=10.0, recover_after=5.0)
        assert len(schedule.nodes()) == 4
        assert all(event.recover_at == pytest.approx(event.fail_at + 5.0) for event in schedule)

    def test_targeted_failures_validate_nodes(self):
        planner = FailurePlanner(8, seed=0)
        with pytest.raises(ConfigurationError):
            planner.targeted_failures([9], start=1.0, spacing=1.0)

    def test_cannot_protect_everyone(self):
        with pytest.raises(ConfigurationError):
            FailurePlanner(4, protected_nodes=(1, 2, 3, 4))

    def test_schedule_apply_registers_failures(self):
        cluster = build_fault_tolerant_cluster(8, delay_model=ConstantDelay(1.0))
        schedule = FailureSchedule()
        planner = FailurePlanner(8, seed=2)
        schedule = planner.single_failure(4, fail_at=1.0, recover_at=5.0)
        schedule.apply(cluster)
        cluster.run_until_quiescent()
        assert cluster.metrics.failures == [(1.0, 4)]
        assert cluster.metrics.recoveries == [(5.0, 4)]
        assert schedule.last_event_time() == 5.0


class TestScheduleValidation:
    def test_recovery_at_or_before_crash_rejected(self):
        from repro.simulation.failures import FailureEvent

        with pytest.raises(ConfigurationError, match="node 4"):
            FailureEvent(node=4, fail_at=10.0, recover_at=10.0)
        with pytest.raises(ConfigurationError, match="node 4"):
            FailureEvent(node=4, fail_at=10.0, recover_at=3.0)

    def test_negative_fail_time_rejected(self):
        from repro.simulation.failures import FailureEvent

        with pytest.raises(ConfigurationError, match="node 2"):
            FailureEvent(node=2, fail_at=-1.0)

    def test_duplicate_crash_while_down_rejected(self):
        from repro.simulation.failures import FailureEvent

        schedule = FailureSchedule([
            FailureEvent(node=3, fail_at=5.0, recover_at=20.0),
            FailureEvent(node=3, fail_at=10.0, recover_at=30.0),
        ])
        with pytest.raises(ConfigurationError, match="node 3"):
            schedule.validate()

    def test_recrash_of_permanently_down_node_rejected(self):
        from repro.simulation.failures import FailureEvent

        schedule = FailureSchedule([
            FailureEvent(node=7, fail_at=5.0),
            FailureEvent(node=7, fail_at=50.0),
        ])
        with pytest.raises(ConfigurationError, match="down until forever"):
            schedule.validate()

    def test_malformed_schedule_is_rejected_at_apply_time(self):
        from repro.simulation.failures import FailureEvent

        cluster = build_fault_tolerant_cluster(8, delay_model=ConstantDelay(1.0))
        schedule = FailureSchedule([
            FailureEvent(node=3, fail_at=5.0, recover_at=20.0),
            FailureEvent(node=3, fail_at=10.0),
        ])
        with pytest.raises(ConfigurationError, match="node 3"):
            schedule.apply(cluster)
        # Nothing was scheduled: validation runs before any injection.
        assert cluster.metrics.failures == []

    def test_crash_at_recovery_instant_allowed(self):
        from repro.simulation.failures import FailureEvent

        schedule = FailureSchedule([
            FailureEvent(node=3, fail_at=5.0, recover_at=20.0),
            FailureEvent(node=3, fail_at=20.0, recover_at=35.0),
        ])
        schedule.validate()
