"""Seeded-run determinism regression tests.

The engine rewrite (tuple-heap agenda, jump-table dispatch, no-op tracer,
streaming metrics) must not change *anything* observable about a seeded run:
the full trace and the metrics summary have to stay byte-identical.  The
golden digest below was computed on the pre-rewrite engine (seed commit
9d87f97); if it ever changes, either determinism broke or the event order
was intentionally altered — in the latter case recompute the digest and say
so loudly in the commit message.
"""

from __future__ import annotations

import hashlib
import itertools
import json

import pytest

from repro.baselines.registry import build_cluster
from repro.core import messages
from repro.workload.arrivals import poisson_arrivals

#: sha256 over the full trace + metrics summary of the two scenario runs
#: below, computed on the pre-rewrite engine.
GOLDEN_DIGEST = "51796c98bf6d15f69aca1ddd0b336407c6264e7736cb9d439631eb96b0c90639"


def run_golden_scenario():
    """The pinned scenario: a concurrent run and a faulty run, seeded."""
    # Trace records embed request ids drawn from the process-wide counter;
    # pin it so the digest does not depend on which tests ran before us.
    messages._request_counter = itertools.count(1)
    results = []

    # Concurrent workload on the plain open-cube algorithm.
    cluster = build_cluster("open-cube", 16, seed=42, trace=True)
    workload = poisson_arrivals(16, 40, rate=0.5, seed=3, hold=0.4)
    workload.apply(cluster)
    cluster.run_until_quiescent()
    results.append(cluster)

    # Fault-tolerant variant with a crash/recovery (exercises timers and drops).
    cluster = build_cluster("open-cube-ft", 8, seed=7, trace=True)
    workload = poisson_arrivals(8, 24, rate=0.3, seed=5, hold=0.4)
    workload.apply(cluster)
    cluster.fail_node(3, at=20.0)
    cluster.recover_node(3, at=45.0)
    cluster.run_until_quiescent()
    results.append(cluster)

    return results


def trace_digest(clusters) -> str:
    """Digest every trace record and the metrics summary of each cluster."""
    hasher = hashlib.sha256()
    for cluster in clusters:
        for record in cluster.tracer:
            line = (
                repr(record.time),
                record.category.value,
                repr(record.node),
                repr(sorted(record.details.items())),
            )
            hasher.update("|".join(line).encode())
            hasher.update(b"\n")
        hasher.update(
            json.dumps(cluster.metrics.summary(), sort_keys=True).encode()
        )
        hasher.update(b"\n--\n")
    return hasher.hexdigest()


class TestGoldenTrace:
    def test_seeded_run_matches_pre_rewrite_digest(self):
        assert trace_digest(run_golden_scenario()) == GOLDEN_DIGEST

    def test_back_to_back_runs_are_identical(self):
        assert trace_digest(run_golden_scenario()) == trace_digest(run_golden_scenario())


class TestCountersModeEquivalence:
    @pytest.mark.benchmark
    def test_counters_mode_summary_matches_full_mode(self):
        """detail="counters" must agree with detail="full" on every aggregate."""
        summaries = {}
        tallies = {}
        for detail in ("full", "counters"):
            cluster = build_cluster(
                "open-cube", 32, seed=11, trace=False, metrics_detail=detail
            )
            workload = poisson_arrivals(32, 200, rate=1.0, seed=9, hold=0.2)
            workload.apply(cluster)
            cluster.run_until_quiescent()
            summaries[detail] = cluster.metrics.summary()
            tallies[detail] = (
                cluster.metrics.total_messages(),
                cluster.metrics.total_messages(include_dropped=False),
                dict(cluster.metrics.messages_by_sender),
                cluster.metrics.messages_per_request(),
            )
        assert summaries["counters"] == summaries["full"]
        assert tallies["counters"] == tallies["full"]

    @pytest.mark.benchmark
    def test_counters_mode_keeps_no_per_message_records(self):
        cluster = build_cluster(
            "open-cube", 32, seed=1, trace=False, metrics_detail="counters"
        )
        workload = poisson_arrivals(32, 500, rate=2.0, seed=2, hold=0.1)
        workload.apply(cluster)
        cluster.run_until_quiescent()
        assert cluster.metrics.total_messages() > 1000
        # Memory stays O(requests): no per-message record was allocated.
        assert cluster.metrics.sent_messages == []
        assert len(cluster.metrics.requests) == 500
