"""Seeded-run determinism regression tests.

The engine rewrite (tuple-heap agenda, jump-table dispatch, no-op tracer,
streaming metrics) must not change *anything* observable about a seeded run:
the full trace and the metrics summary have to stay byte-identical.  The
golden digest below was computed on the pre-rewrite engine (seed commit
9d87f97); if it ever changes, either determinism broke or the event order
was intentionally altered — in the latter case recompute the digest and say
so loudly in the commit message.
"""

from __future__ import annotations

import hashlib
import itertools
import json

import pytest

from repro.baselines.registry import build_cluster
from repro.core import messages
from repro.workload.arrivals import poisson_arrivals, poisson_stream

#: sha256 over the full trace + metrics summary of the two scenario runs
#: below, computed on the pre-rewrite engine.
GOLDEN_DIGEST = "51796c98bf6d15f69aca1ddd0b336407c6264e7736cb9d439631eb96b0c90639"

#: sha256 of the streamed (bounded-window feeder) run below, pinning the
#: feeder's own event order from the PR that introduced it.  The pinned
#: workload has distinct arrival times, so lazy injection cannot reorder
#: arrivals relative to eager scheduling — but injection *sequence numbers*
#: differ, and this digest locks that canonical streamed order down.
STREAMED_DIGEST = "e613ba3eb6d8bb39366bb798615bda941831629bce6be7ff2585d0140aa78203"


def run_golden_scenario():
    """The pinned scenario: a concurrent run and a faulty run, seeded."""
    # Trace records embed request ids drawn from the process-wide counter;
    # pin it so the digest does not depend on which tests ran before us.
    messages._request_counter = itertools.count(1)
    results = []

    # Concurrent workload on the plain open-cube algorithm.
    cluster = build_cluster("open-cube", 16, seed=42, trace=True)
    workload = poisson_arrivals(16, 40, rate=0.5, seed=3, hold=0.4)
    workload.apply(cluster)
    cluster.run_until_quiescent()
    results.append(cluster)

    # Fault-tolerant variant with a crash/recovery (exercises timers and drops).
    cluster = build_cluster("open-cube-ft", 8, seed=7, trace=True)
    workload = poisson_arrivals(8, 24, rate=0.3, seed=5, hold=0.4)
    workload.apply(cluster)
    cluster.fail_node(3, at=20.0)
    cluster.recover_node(3, at=45.0)
    cluster.run_until_quiescent()
    results.append(cluster)

    return results


def trace_digest(clusters) -> str:
    """Digest every trace record and the metrics summary of each cluster."""
    hasher = hashlib.sha256()
    for cluster in clusters:
        for record in cluster.tracer:
            line = (
                repr(record.time),
                record.category.value,
                repr(record.node),
                repr(sorted(record.details.items())),
            )
            hasher.update("|".join(line).encode())
            hasher.update(b"\n")
        hasher.update(
            json.dumps(cluster.metrics.summary(), sort_keys=True).encode()
        )
        hasher.update(b"\n--\n")
    return hasher.hexdigest()


def run_golden_scenario_with_tracing():
    """The same pinned scenario, telemetry mode with causal tracing on.

    Trace sampling is a pure function of ``(seed, request_id)`` — never an
    RNG draw — and the recorder only observes hooks that already fire, so
    the event order (and therefore the golden digest) must be byte-identical
    with tracing enabled.
    """
    messages._request_counter = itertools.count(1)
    results = []
    tracing = {"trace_sample": 0.25}

    cluster = build_cluster(
        "open-cube", 16, seed=42, trace=True,
        metrics_detail="telemetry", telemetry_options=tracing,
    )
    workload = poisson_arrivals(16, 40, rate=0.5, seed=3, hold=0.4)
    workload.apply(cluster)
    cluster.run_until_quiescent()
    cluster.metrics.finalize_telemetry(cluster.now)
    results.append(cluster)

    cluster = build_cluster(
        "open-cube-ft", 8, seed=7, trace=True,
        metrics_detail="telemetry", telemetry_options=tracing,
    )
    workload = poisson_arrivals(8, 24, rate=0.3, seed=5, hold=0.4)
    workload.apply(cluster)
    cluster.fail_node(3, at=20.0)
    cluster.recover_node(3, at=45.0)
    cluster.run_until_quiescent()
    cluster.metrics.finalize_telemetry(cluster.now)
    results.append(cluster)

    return results


def run_streamed_scenario(**cluster_kwargs):
    """The pinned feeder scenario: a streamed n=64 Poisson run, seeded."""
    messages._request_counter = itertools.count(1)
    cluster = build_cluster("open-cube", 64, seed=17, trace=True, **cluster_kwargs)
    stream = poisson_stream(64, 120, rate=0.8, seed=23, hold=0.3)
    cluster.feed_workload(stream, window=8)
    cluster.run_until_quiescent()
    return [cluster]


class TestGoldenTrace:
    def test_seeded_run_matches_pre_rewrite_digest(self):
        assert trace_digest(run_golden_scenario()) == GOLDEN_DIGEST

    def test_back_to_back_runs_are_identical(self):
        assert trace_digest(run_golden_scenario()) == trace_digest(run_golden_scenario())


class TestStreamedGoldenTrace:
    def test_streamed_seeded_run_matches_pinned_digest(self):
        assert trace_digest(run_streamed_scenario()) == STREAMED_DIGEST

    def test_streamed_run_matches_eager_run_of_same_workload(self):
        """Lazy injection must not change *what* happens, only agenda size."""
        streamed = run_streamed_scenario()[0]
        messages._request_counter = itertools.count(1)
        eager = build_cluster("open-cube", 64, seed=17, trace=True)
        poisson_stream(64, 120, rate=0.8, seed=23, hold=0.3).materialise().apply(eager)
        eager.run_until_quiescent()
        assert streamed.metrics.summary() == eager.metrics.summary()
        # And the agenda stayed O(active + window) instead of O(requests).
        assert streamed.simulator.peak_pending < eager.simulator.peak_pending


class TestTracingKeepsGoldenDigests:
    """Enabling ``trace_sample`` must not move either golden digest."""

    def test_golden_digest_unchanged_with_tracing_enabled(self):
        clusters = run_golden_scenario_with_tracing()
        assert trace_digest(clusters) == GOLDEN_DIGEST
        # The tracing actually ran: both clusters sampled requests.
        for cluster in clusters:
            assert cluster.metrics.telemetry.tracing.block()["sampled"] > 0

    def test_streamed_digest_unchanged_with_tracing_enabled(self):
        clusters = run_streamed_scenario(
            metrics_detail="telemetry", telemetry_options={"trace_sample": 0.25}
        )
        clusters[0].metrics.finalize_telemetry(clusters[0].now)
        assert trace_digest(clusters) == STREAMED_DIGEST
        assert clusters[0].metrics.telemetry.tracing.block()["sampled"] > 0


class TestTraceExportDeterminism:
    """Same seed ⇒ byte-identical sampled trace export, per engine path."""

    TELEMETRY = {"trace_sample": 0.2}

    @staticmethod
    def _export(**kwargs):
        from repro.experiments.runner import run_workload

        messages._request_counter = itertools.count(1)
        result = run_workload(
            "open-cube",
            16,
            poisson_arrivals(16, 60, rate=1.0, seed=9, hold=0.2),
            seed=13,
            metrics_detail="telemetry",
            **kwargs,
        )
        assert result.traces is not None
        assert result.traces["sampled"] > 0
        return json.dumps(result.traces, sort_keys=True)

    def test_serial_path_is_byte_identical(self):
        first = self._export(telemetry=self.TELEMETRY)
        second = self._export(telemetry=self.TELEMETRY)
        assert first == second

    def test_streamed_path_is_byte_identical(self):
        first = self._export(telemetry=self.TELEMETRY, stream=True)
        second = self._export(telemetry=self.TELEMETRY, stream=True)
        assert first == second

    def test_sharded_path_is_byte_identical(self):
        first = self._export(telemetry=self.TELEMETRY, shards=1)
        second = self._export(telemetry=self.TELEMETRY, shards=1)
        assert first == second

    def test_export_reconstructs_full_journey(self):
        """At least one sampled trace shows issue→hops→token→grant→exit."""
        block = json.loads(self._export(telemetry={"trace_sample": 1.0}))
        complete = [
            t
            for t in block["traces"]
            if t["granted_at"] is not None
            and t["exited_at"] is not None
            and any(h["category"] == "request" for h in t["hops"])
            and any(h["category"] == "token" for h in t["hops"])
        ]
        assert complete, "no trace reconstructed a full request journey"
        trace = complete[0]
        assert trace["issued_at"] <= trace["granted_at"] <= trace["exited_at"]
        token_hops = [h for h in trace["hops"] if h["category"] == "token"]
        # The final token hop lands on the requester before the grant.
        assert token_hops[-1]["to"] == trace["node"]
        assert token_hops[-1]["delivered_at"] is not None
        assert token_hops[-1]["delivered_at"] <= trace["granted_at"]


class TestCountersModeEquivalence:
    @pytest.mark.benchmark
    def test_counters_mode_summary_matches_full_mode(self):
        """detail="counters" must agree with detail="full" on every aggregate."""
        summaries = {}
        tallies = {}
        for detail in ("full", "counters"):
            cluster = build_cluster(
                "open-cube", 32, seed=11, trace=False, metrics_detail=detail
            )
            workload = poisson_arrivals(32, 200, rate=1.0, seed=9, hold=0.2)
            workload.apply(cluster)
            cluster.run_until_quiescent()
            summaries[detail] = cluster.metrics.summary()
            tallies[detail] = (
                cluster.metrics.total_messages(),
                cluster.metrics.total_messages(include_dropped=False),
                dict(cluster.metrics.messages_by_sender),
                cluster.metrics.messages_per_request(),
            )
        assert summaries["counters"] == summaries["full"]
        assert tallies["counters"] == tallies["full"]

    @pytest.mark.benchmark
    def test_counters_mode_keeps_no_per_message_records(self):
        cluster = build_cluster(
            "open-cube", 32, seed=1, trace=False, metrics_detail="counters"
        )
        workload = poisson_arrivals(32, 500, rate=2.0, seed=2, hold=0.1)
        workload.apply(cluster)
        cluster.run_until_quiescent()
        assert cluster.metrics.total_messages() > 1000
        # Memory stays O(requests): no per-message record was allocated.
        assert cluster.metrics.sent_messages == []
        assert len(cluster.metrics.requests) == 500
