"""Tests for the bounded-window workload feeder and arrival streams.

The feeder (:meth:`SimulatedCluster.feed_workload`) must be a pure
performance device: a streamed run has to produce *exactly* the metrics an
eager ``Workload.apply`` run produces, while keeping the agenda
O(active + window) instead of O(requests).
"""

from __future__ import annotations

import itertools

import pytest

from repro.baselines.registry import build_cluster
from repro.core import messages
from repro.exceptions import SimulationError
from repro.simulation.failures import FailurePlanner
from repro.workload.arrivals import (
    ArrivalStream,
    RequestArrival,
    burst_stream,
    hotspot_stream,
    poisson_stream,
)

STREAMS = {
    "poisson": lambda: poisson_stream(32, 300, rate=1.0, seed=9, hold=0.2),
    "bursts": lambda: burst_stream(32, 6, 16, seed=4, hold=0.3),
    "hotspot": lambda: hotspot_stream(
        32, 200, hotspot_nodes=[3, 7, 21], hotspot_fraction=0.7, seed=2, hold=0.2
    ),
}


def run_cluster(stream, *, streamed, window=64, algorithm="open-cube", n=32, schedule=None):
    """One seeded run; request ids pinned so eager/streamed runs compare."""
    messages._request_counter = itertools.count(1)
    cluster = build_cluster(algorithm, n, seed=11, trace=False)
    if streamed:
        cluster.feed_workload(stream, window=window)
    else:
        stream.materialise().apply(cluster)
    if schedule is not None:
        schedule.apply(cluster)
    cluster.run_until_quiescent()
    return cluster


class TestStreamGenerators:
    def test_streams_are_lazy_and_reiterable(self):
        stream = poisson_stream(16, 50, rate=1.0, seed=3)
        assert isinstance(stream, ArrivalStream)
        assert stream.count == 50
        assert list(stream) == list(stream)  # fresh RNG per iteration

    def test_stream_matches_materialised_workload(self):
        for name, make in STREAMS.items():
            stream = make()
            workload = make().materialise()
            assert list(stream) == workload.arrivals, name
            assert stream.name == workload.name

    def test_workload_stream_round_trip(self):
        workload = poisson_stream(8, 20, rate=1.0, seed=1).materialise()
        view = workload.stream()
        assert list(view) == workload.arrivals
        assert view.count == len(workload)

    def test_counting_schedule_matches_apply(self):
        workload = poisson_stream(8, 25, rate=1.0, seed=6).materialise()
        counting = build_cluster("open-cube", 8, seed=0, trace=False)
        ids_cluster = build_cluster("open-cube", 8, seed=0, trace=False)
        assert workload.schedule(counting) == len(workload.apply(ids_cluster))
        assert counting.simulator.pending_events == ids_cluster.simulator.pending_events


class TestFeederParity:
    @pytest.mark.parametrize("kind", sorted(STREAMS))
    def test_streamed_run_matches_eager_metrics(self, kind):
        eager = run_cluster(STREAMS[kind](), streamed=False)
        streamed = run_cluster(STREAMS[kind](), streamed=True)
        assert streamed.metrics.summary() == eager.metrics.summary()
        assert streamed.metrics.total_messages() == eager.metrics.total_messages()
        assert dict(streamed.metrics.messages_by_sender) == dict(
            eager.metrics.messages_by_sender
        )
        # Request ids are allocated in stream order, so even the per-request
        # records line up one-to-one.
        assert streamed.metrics.requests.keys() == eager.metrics.requests.keys()

    @pytest.mark.parametrize("window", [1, 2, 7, 299, 300, 10_000])
    def test_window_boundaries_do_not_change_the_run(self, window):
        eager = run_cluster(STREAMS["poisson"](), streamed=False)
        streamed = run_cluster(STREAMS["poisson"](), streamed=True, window=window)
        assert streamed.metrics.summary() == eager.metrics.summary()

    def test_window_larger_than_stream_primes_everything(self):
        stream = poisson_stream(8, 10, rate=1.0, seed=5)
        messages._request_counter = itertools.count(1)
        cluster = build_cluster("open-cube", 8, seed=1, trace=False)
        primed = cluster.feed_workload(stream, window=50)
        assert primed == 10
        assert cluster.simulator.pending_events == 10

    def test_window_one_keeps_single_arrival_queued(self):
        stream = poisson_stream(8, 40, rate=1.0, seed=5)
        messages._request_counter = itertools.count(1)
        cluster = build_cluster("open-cube", 8, seed=1, trace=False)
        assert cluster.feed_workload(stream, window=1) == 1
        assert cluster.simulator.pending_events == 1
        cluster.run_until_quiescent()
        assert len(cluster.metrics.requests) == 40

    def test_agenda_peak_stays_within_window_plus_active(self):
        window = 16
        eager = run_cluster(STREAMS["poisson"](), streamed=False)
        streamed = run_cluster(STREAMS["poisson"](), streamed=True, window=window)
        n = 32
        assert eager.simulator.peak_pending >= 300  # eager: O(requests)
        assert streamed.simulator.peak_pending <= window + 2 * n
        assert streamed.simulator.peak_pending < eager.simulator.peak_pending


class TestFeederEdgeCases:
    def test_invalid_window_rejected(self):
        cluster = build_cluster("open-cube", 8, seed=0, trace=False)
        with pytest.raises(SimulationError):
            cluster.feed_workload(poisson_stream(8, 5), window=0)

    def test_unknown_node_in_stream_rejected_like_request_cs(self):
        cluster = build_cluster("open-cube", 8, seed=0, trace=False)
        bad = [RequestArrival(node=99, at=1.0, hold=0.1)]
        with pytest.raises(SimulationError, match="unknown node 99"):
            cluster.feed_workload(iter(bad), window=4)
        # Beyond the priming window the same guard fires at refill time.
        cluster = build_cluster("open-cube", 8, seed=0, trace=False)
        mixed = [
            RequestArrival(node=1, at=1.0, hold=0.1),
            RequestArrival(node=99, at=2.0, hold=0.1),
        ]
        cluster.feed_workload(iter(mixed), window=1)
        with pytest.raises(SimulationError, match="unknown node 99"):
            cluster.run_until_quiescent()

    def test_none_hold_defaults_to_cs_duration_like_request_cs(self):
        # request_cs(hold=None) falls back to the cluster's cs_duration and
        # auto-releases; a streamed arrival with hold=None must behave the
        # same (both inside the priming window and past it).
        arrivals = [RequestArrival(node=i, at=float(i) * 40.0, hold=None) for i in (1, 2, 3)]
        cluster = build_cluster("open-cube", 8, seed=0, trace=False)
        cluster.feed_workload(iter(arrivals), window=1)
        cluster.run_until_quiescent()
        summary = cluster.metrics.summary()
        assert summary["requests_granted"] == 3
        assert all(
            record.released_at is not None for record in cluster.metrics.requests.values()
        )

    def test_backwards_stream_beyond_window_raises(self):
        # The second arrival is far in the past relative to the first; with
        # window=1 it is only pulled once the clock has already advanced.
        arrivals = [
            RequestArrival(node=1, at=50.0, hold=0.1),
            RequestArrival(node=2, at=1.0, hold=0.1),
        ]
        cluster = build_cluster("open-cube", 8, seed=0, trace=False)
        cluster.feed_workload(iter(arrivals), window=1)
        with pytest.raises(SimulationError, match="backwards in time"):
            cluster.run_until_quiescent()

    def test_out_of_order_inside_window_is_fine(self):
        # Same workload, but the window covers both arrivals, so the agenda
        # reorders them and the run matches the sorted eager schedule.
        arrivals = [
            RequestArrival(node=1, at=50.0, hold=0.1),
            RequestArrival(node=2, at=1.0, hold=0.1),
        ]
        cluster = build_cluster("open-cube", 8, seed=0, trace=False)
        cluster.feed_workload(iter(arrivals), window=2)
        cluster.run_until_quiescent()
        records = sorted(cluster.metrics.requests.values(), key=lambda r: r.issued_at)
        assert [r.node for r in records] == [2, 1]

    def test_overlapping_bursts_stream_in_time_order(self):
        # A burst tail longer than the burst spacing used to leak
        # out-of-order arrivals past the window horizon and crash the
        # feeder; the stream now merges overlapping bursts in time order.
        stream = burst_stream(64, 3, 60, burst_spacing=20.0, within_burst=0.5, seed=8)
        times = [a.at for a in stream]
        assert times == sorted(times)
        assert len(times) == 180
        eager = run_cluster(
            burst_stream(64, 3, 60, burst_spacing=20.0, within_burst=0.5, seed=8),
            streamed=False, n=64,
        )
        streamed = run_cluster(
            burst_stream(64, 3, 60, burst_spacing=20.0, within_burst=0.5, seed=8),
            streamed=True, window=4, n=64,
        )
        assert streamed.metrics.summary() == eager.metrics.summary()

    def test_non_overlapping_bursts_keep_generation_order(self):
        # The merge is stable: with no overlap the stream must stay
        # byte-identical to the historical burst-grouped generation order.
        stream = burst_stream(16, 3, 16, seed=5)
        grouped = list(stream)
        for i in range(3):
            burst = grouped[i * 16 : (i + 1) * 16]
            assert {a.node for a in burst} == set(range(1, 17))

    def test_two_concurrent_feeds_interleave(self):
        messages._request_counter = itertools.count(1)
        cluster = build_cluster("open-cube", 16, seed=3, trace=False)
        cluster.feed_workload(poisson_stream(16, 30, rate=1.0, seed=1), window=4)
        cluster.feed_workload(poisson_stream(16, 20, rate=1.0, seed=2), window=4)
        cluster.run_until_quiescent()
        assert len(cluster.metrics.requests) == 50


class TestExactTieArrivals:
    """Pin the documented measure-zero caveat: on exact arrival-time ties
    only the agenda's insertion-order tiebreak can differ between eager and
    streamed runs (ROADMAP: built-in generators draw continuous times, so
    ties never occur there — these tests construct them deliberately)."""

    TIED = [
        RequestArrival(node=1, at=10.0, hold=0.1),
        RequestArrival(node=2, at=10.0, hold=0.1),
        RequestArrival(node=3, at=10.0, hold=0.1),
    ]

    def run_tied(self, *, streamed, window=1):
        messages._request_counter = itertools.count(1)
        cluster = build_cluster("open-cube", 8, seed=11, trace=False)
        if streamed:
            cluster.feed_workload(iter(self.TIED), window=window)
        else:
            for arrival in self.TIED:
                cluster.request_cs(arrival.node, at=arrival.at, hold=arrival.hold)
        cluster.run_until_quiescent()
        return cluster

    def test_tied_arrivals_issue_in_insertion_order_both_ways(self):
        # Insertion order IS the tiebreak: eager scheduling queues all three
        # up front in list order; the window=1 feeder injects each successor
        # mid-run with a fresh (higher) sequence number — same relative
        # order, so ids and issue order line up exactly.
        for streamed in (False, True):
            cluster = self.run_tied(streamed=streamed)
            records = sorted(cluster.metrics.requests.values(), key=lambda r: r.request_id)
            assert [r.node for r in records] == [1, 2, 3], f"streamed={streamed}"
            assert all(r.issued_at == 10.0 for r in records)
            assert [r.request_id for r in records] == [1, 2, 3]

    def test_tied_streams_match_eager_metrics(self):
        eager = self.run_tied(streamed=False)
        for window in (1, 2, 3):
            streamed = self.run_tied(streamed=True, window=window)
            assert streamed.metrics.summary() == eager.metrics.summary(), window
            assert streamed.metrics.requests.keys() == eager.metrics.requests.keys()

    def test_tie_with_pending_event_keeps_stream_order_within_the_feed(self):
        # A tie against the *previous* arrival's same-instant machinery: the
        # refill happens before the fired arrival issues, so even a
        # zero-lookahead (window=1) feeder keeps stream order on a tie.
        arrivals = [
            RequestArrival(node=4, at=5.0, hold=0.2),
            RequestArrival(node=5, at=5.0, hold=0.2),
        ]
        messages._request_counter = itertools.count(1)
        cluster = build_cluster("open-cube", 8, seed=2, trace=False)
        cluster.feed_workload(iter(arrivals), window=1)
        cluster.run_until_quiescent()
        by_id = sorted(cluster.metrics.requests.values(), key=lambda r: r.request_id)
        assert [r.node for r in by_id] == [4, 5]
        assert len(cluster.metrics.requests) == 2


class TestFeederWithFailures:
    def test_failed_requesters_streamed_arrival_is_skipped(self):
        # Crash a node for a span that covers some of its streamed arrivals:
        # those requests must never be issued, exactly as in the eager run.
        stream_factory = lambda: poisson_stream(16, 120, rate=0.5, seed=13, hold=0.3)
        schedule = FailurePlanner(16, seed=1).single_failure(
            node=5, fail_at=30.0, recover_at=160.0
        )
        eager = run_cluster(
            stream_factory(), streamed=False, algorithm="open-cube-ft", n=16,
            schedule=schedule,
        )
        streamed = run_cluster(
            stream_factory(), streamed=True, window=8, algorithm="open-cube-ft", n=16,
            schedule=schedule,
        )
        dead_span_arrivals = [
            a for a in stream_factory() if a.node == 5 and 30.0 <= a.at < 160.0
        ]
        assert dead_span_arrivals, "seed must place arrivals inside the dead span"
        issued = {r.node for r in streamed.metrics.requests.values()}
        assert issued  # the run still issued everyone else's requests
        assert len(streamed.metrics.requests) == 120 - len(dead_span_arrivals)
        assert streamed.metrics.summary() == eager.metrics.summary()
        assert streamed.metrics.requests.keys() == eager.metrics.requests.keys()

    def test_window_one_under_failure_schedule_matches_eager(self):
        # The degenerate zero-lookahead window with crashes mid-stream: every
        # refill happens while nodes are failing/recovering, and the agenda
        # never holds more than the single next arrival (plus active work).
        stream_factory = lambda: poisson_stream(16, 80, rate=0.5, seed=21, hold=0.3)
        schedule_factory = lambda: FailurePlanner(16, seed=2).periodic_failures(
            2, start=25.0, spacing=80.0, recover_after=30.0
        )
        eager = run_cluster(
            stream_factory(), streamed=False, algorithm="open-cube-ft", n=16,
            schedule=schedule_factory(),
        )
        streamed = run_cluster(
            stream_factory(), streamed=True, window=1, algorithm="open-cube-ft", n=16,
            schedule=schedule_factory(),
        )
        assert streamed.metrics.summary() == eager.metrics.summary()
        assert streamed.metrics.requests.keys() == eager.metrics.requests.keys()
        assert len(streamed.metrics.failures) == 2
        assert streamed.simulator.peak_pending < eager.simulator.peak_pending
