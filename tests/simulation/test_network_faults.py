"""Adversarial network-fault layer tests: loss, duplication, partitions.

Pins the fault layer's contract:

* fault-free clusters keep the exact reliable-channel code path (no fault
  counter keys in ``summary()``, bit-identical behaviour — the golden
  digests in test_determinism.py are the stronger version of this);
* fault counters are exact and surface across all three metrics detail
  modes once faults are active;
* the fault RNG is dedicated: enabling faults never perturbs the
  simulator's delay sampling sequence;
* per-channel FIFO clocks never leak across cluster rebuilds, with or
  without loss/dup faults in the mix.
"""

from __future__ import annotations

import math

import pytest

from repro.baselines.registry import build_cluster
from repro.exceptions import ConfigurationError
from repro.simulation.network import (
    ChannelState,
    NetworkFaults,
    ParetoDelay,
    PartitionWindow,
)
from repro.simulation.trace import TraceCategory
from repro.workload.arrivals import poisson_arrivals


def lossy_cluster(detail="full", *, trace=False, **fault_kwargs):
    faults = NetworkFaults(**fault_kwargs)
    cluster = build_cluster(
        "open-cube-ft", 8, seed=1, trace=trace, metrics_detail=detail,
        network_faults=faults,
    )
    poisson_arrivals(8, 24, rate=1.0, seed=2, hold=0.2).apply(cluster)
    cluster.run_until_quiescent()
    return cluster


class TestNetworkFaultsConfig:
    def test_rates_validated(self):
        with pytest.raises(ConfigurationError):
            NetworkFaults(loss_rate=1.0)
        with pytest.raises(ConfigurationError):
            NetworkFaults(dup_rate=-0.1)

    def test_partition_window_validated(self):
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=-1.0, heal=2.0, nodes=frozenset({1}))
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=5.0, heal=5.0, nodes=frozenset({1}))
        with pytest.raises(ConfigurationError):
            PartitionWindow(start=0.0, heal=1.0, nodes=frozenset())

    def test_partition_nodes_validated_against_population(self):
        faults = NetworkFaults(
            partitions=[PartitionWindow(start=0.0, heal=1.0, nodes=frozenset({9}))]
        )
        with pytest.raises(ConfigurationError, match="outside 1..8"):
            faults.validate_nodes(8)
        # A partition swallowing every node leaves nothing to sever.
        whole = NetworkFaults(
            partitions=[
                PartitionWindow(start=0.0, heal=1.0, nodes=frozenset(range(1, 5)))
            ]
        )
        with pytest.raises(ConfigurationError, match="other side"):
            whole.validate_nodes(4)

    def test_enabled_and_heal_times(self):
        assert not NetworkFaults().enabled
        assert NetworkFaults(loss_rate=0.1).enabled
        windows = [
            PartitionWindow(start=0.0, heal=4.0, nodes=frozenset({1})),
            PartitionWindow(start=1.0, heal=math.inf, nodes=frozenset({2})),
        ]
        faults = NetworkFaults(partitions=windows)
        assert faults.enabled
        assert faults.last_heal_time() == 4.0
        assert NetworkFaults().last_heal_time() == 0.0

    def test_severs_is_symmetric_and_windowed(self):
        window = PartitionWindow(start=2.0, heal=6.0, nodes=frozenset({1, 2}))
        assert window.severs(1, 3, 2.0)
        assert window.severs(3, 1, 5.9)
        assert not window.severs(1, 2, 3.0)  # both inside
        assert not window.severs(3, 4, 3.0)  # both outside
        assert not window.severs(1, 3, 1.9)  # before
        assert not window.severs(1, 3, 6.0)  # healed


class TestFaultFreePathUnchanged:
    def test_disabled_faults_keep_summary_clean(self):
        """A cluster without faults must not grow summary keys (the golden
        digest hashes the summary JSON — new keys would break it)."""
        cluster = build_cluster("open-cube", 8, seed=1)
        poisson_arrivals(8, 10, rate=1.0, seed=2, hold=0.2).apply(cluster)
        cluster.run_until_quiescent()
        summary = cluster.metrics.summary()
        assert "lost_messages" not in summary
        assert "duplicated_messages" not in summary
        assert "blocked_messages" not in summary

    def test_all_zero_faults_object_is_treated_as_disabled(self):
        cluster = build_cluster(
            "open-cube", 8, seed=1, network_faults=NetworkFaults()
        )
        assert cluster.network_faults is None
        assert cluster.metrics.network_faults_active is False

    def test_enabling_faults_does_not_perturb_delay_sampling(self):
        """The fault layer draws from its own RNG: the simulator's delay
        sequence (and hence every *delivered* message's timing) must be
        unchanged relative to a fault-free run of the same seed when the
        configured fault rates never fire."""
        def run(faults):
            cluster = build_cluster(
                "open-cube", 8, seed=1, network_faults=faults
            )
            poisson_arrivals(8, 20, rate=1.0, seed=2, hold=0.2).apply(cluster)
            cluster.run_until_quiescent()
            summary = cluster.metrics.summary()
            # Strip the gated fault-counter keys: the comparison is about
            # the underlying run, not the bookkeeping.
            for key in ("lost_messages", "duplicated_messages", "blocked_messages"):
                summary.pop(key, None)
            return summary

        clean = run(None)
        # A partition window over a time range the run never reaches: the
        # fault path is active but no message is ever actually blocked.
        inert = run(
            NetworkFaults(
                partitions=[
                    PartitionWindow(start=1e9, heal=2e9, nodes=frozenset({1}))
                ],
                seed=123,
            )
        )
        assert clean == inert


class TestFaultInjection:
    def test_loss_and_dup_counters_surface_in_all_detail_modes(self):
        for detail in ("full", "counters", "telemetry"):
            cluster = lossy_cluster(detail, loss_rate=0.08, dup_rate=0.08, seed=5)
            summary = cluster.metrics.summary()
            assert summary["lost_messages"] == cluster.metrics.lost_messages
            assert summary["duplicated_messages"] == cluster.metrics.duplicated_messages
            assert summary["blocked_messages"] == 0
            assert (
                cluster.metrics.lost_messages + cluster.metrics.duplicated_messages > 0
            ), f"faults never fired in detail={detail}"

    def test_fault_injection_is_seed_deterministic(self):
        a = lossy_cluster("counters", loss_rate=0.08, dup_rate=0.08, seed=5)
        b = lossy_cluster("counters", loss_rate=0.08, dup_rate=0.08, seed=5)
        assert a.metrics.summary() == b.metrics.summary()

    def test_partition_blocks_cross_messages_and_traces_them(self):
        cluster = build_cluster(
            "open-cube", 8, seed=1, trace=True,
            network_faults=NetworkFaults(
                partitions=[
                    PartitionWindow(start=0.0, heal=math.inf, nodes=frozenset({1}))
                ]
            ),
        )
        poisson_arrivals(8, 12, rate=1.0, seed=2, hold=0.2).apply(cluster)
        cluster.run_until_quiescent()
        assert cluster.metrics.blocked_messages > 0
        drops = [
            record
            for record in cluster.tracer
            if record.category is TraceCategory.DROP
            and record.details.get("fault") == "partition"
        ]
        assert len(drops) == cluster.metrics.blocked_messages
        # Every blocked message crossed the cut: exactly one endpoint is 1.
        for record in drops:
            endpoints = {record.node, record.details["sender"]}
            assert len(endpoints & {1}) == 1

    def test_duplicate_delivers_message_twice(self):
        cluster = lossy_cluster("full", trace=True, dup_rate=0.15, seed=9)
        dup_traces = [
            record
            for record in cluster.tracer
            if record.details.get("fault") == "duplicate"
        ]
        assert len(dup_traces) == cluster.metrics.duplicated_messages > 0

    def test_in_flight_gauge_accounts_faults(self):
        cluster = lossy_cluster("telemetry", loss_rate=0.1, dup_rate=0.1, seed=5)
        metrics = cluster.metrics
        # Quiescent run: everything injected was either eaten by the network
        # or delivered.
        assert (
            metrics._total_sent
            + metrics.duplicated_messages
            - metrics.lost_messages
            - metrics.blocked_messages
            - cluster._delivered_total
        ) == 0


class TestParetoDelay:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            ParetoDelay(alpha=0.0)
        with pytest.raises(ConfigurationError):
            ParetoDelay(scale=0.5, cap=0.5)

    def test_samples_bounded_and_heavy_tailed(self):
        import random

        model = ParetoDelay(alpha=1.5, scale=0.2, cap=8.0)
        rng = random.Random(3)
        samples = [model.sample(1, 2, rng) for _ in range(5000)]
        assert model.max_delay == 8.0
        assert all(0.2 <= s <= 8.0 for s in samples)
        # Heavy tail: some samples land far beyond the median regime.
        assert max(samples) > 2.0

    def test_bound_sampler_matches_sample(self):
        import random

        model = ParetoDelay()
        direct = [model.sample(1, 2, random.Random(7)) for _ in range(1)]
        bound = model.bind(random.Random(7))
        assert bound(1, 2) == direct[0]


class TestChannelStateIsolation:
    """Satellite: FIFO clocks must never leak across cluster rebuilds."""

    def test_reset_clears_fifo_clock(self):
        channels = ChannelState(fifo=True)
        first = channels.delivery_time(1, 2, send_time=0.0, delay=5.0)
        clamped = channels.delivery_time(1, 2, send_time=1.0, delay=1.0)
        assert first == 5.0 and clamped == 5.0  # FIFO clamp applied
        channels.reset()
        fresh = channels.delivery_time(1, 2, send_time=1.0, delay=1.0)
        assert fresh == 2.0  # history forgotten

    def test_non_fifo_keeps_no_state(self):
        channels = ChannelState(fifo=False)
        channels.delivery_time(1, 2, send_time=0.0, delay=5.0)
        assert channels._last_delivery == {}

    @pytest.mark.parametrize("fault_kwargs", [
        {},
        {"loss_rate": 0.05, "dup_rate": 0.05, "seed": 5},
    ])
    def test_fifo_runs_identical_across_rebuilds(self, fault_kwargs):
        """Rebuilding a FIFO cluster (the sweep pattern) must give the same
        run: per-channel clocks are per-cluster, never shared, including
        under loss/dup faults."""
        def run():
            # The FT variant: plain open-cube can die outright on a
            # duplicated token (a ProtocolError — the fuzzer's
            # expected_failure case), which is not what this test pins.
            faults = NetworkFaults(**fault_kwargs) if fault_kwargs else None
            cluster = build_cluster(
                "open-cube-ft", 8, seed=3, fifo=True, network_faults=faults
            )
            poisson_arrivals(8, 20, rate=1.0, seed=4, hold=0.2).apply(cluster)
            cluster.run_until_quiescent()
            return cluster.metrics.summary()

        assert run() == run()

    def test_fifo_clamps_but_duplicates_bypass(self):
        """Under FIFO + dup the original copies stay ordered (channel clock)
        while duplicates may overtake — the clamp applies only to the
        primary delivery."""
        cluster = build_cluster(
            "open-cube-ft", 8, seed=1, fifo=True, trace=True,
            network_faults=NetworkFaults(dup_rate=0.2, seed=11),
        )
        poisson_arrivals(8, 24, rate=1.5, seed=2, hold=0.2).apply(cluster)
        cluster.run_until_quiescent()
        assert cluster.metrics.duplicated_messages > 0
        # The cluster's own channel table only ever tracked primary sends.
        assert cluster.channels.fifo
