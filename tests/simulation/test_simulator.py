"""Tests of the discrete-event engine."""

from __future__ import annotations

import pytest

from repro.exceptions import SimulationError
from repro.simulation.events import ScheduledAction
from repro.simulation.simulator import Simulator


class TestScheduling:
    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.call_at(5.0, lambda: fired.append("b"))
        sim.call_at(1.0, lambda: fired.append("a"))
        sim.call_at(9.0, lambda: fired.append("c"))
        sim.run()
        assert fired == ["a", "b", "c"]
        assert sim.now == 9.0

    def test_simultaneous_events_fire_in_insertion_order(self):
        sim = Simulator()
        fired = []
        for label in "abcd":
            sim.call_at(3.0, lambda label=label: fired.append(label))
        sim.run()
        assert fired == list("abcd")

    def test_relative_scheduling(self):
        sim = Simulator()
        fired = []
        sim.call_after(2.0, lambda: fired.append(sim.now))
        sim.run()
        assert fired == [2.0]

    def test_cannot_schedule_in_the_past(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.call_at(1.0, lambda: None)

    def test_negative_delay_rejected(self):
        sim = Simulator()
        with pytest.raises(SimulationError):
            sim.call_after(-1.0, lambda: None)

    def test_cancelled_events_are_skipped(self):
        sim = Simulator()
        fired = []
        event = sim.call_at(1.0, lambda: fired.append("x"))
        sim.call_at(2.0, lambda: fired.append("y"))
        Simulator.cancel(event)
        sim.run()
        assert fired == ["y"]

    def test_events_scheduled_during_run_are_processed(self):
        sim = Simulator()
        fired = []

        def first():
            fired.append("first")
            sim.call_after(1.0, lambda: fired.append("second"))

        sim.call_at(1.0, first)
        sim.run()
        assert fired == ["first", "second"]
        assert sim.now == 2.0


class TestRunControls:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: fired.append(1))
        sim.call_at(10.0, lambda: fired.append(10))
        sim.run(until=5.0)
        assert fired == [1]
        assert sim.pending_events == 1

    def test_event_budget_raises(self):
        sim = Simulator()

        def rearm():
            sim.call_after(1.0, rearm)

        sim.call_at(0.0, rearm)
        with pytest.raises(SimulationError):
            sim.run(max_events=100)

    def test_event_budget_is_exact(self):
        """A budget of N allows exactly N events, not N + 1."""
        sim = Simulator()
        fired = []
        for i in range(5):
            sim.call_at(float(i), lambda i=i: fired.append(i))
        sim.run(max_events=5)  # exactly the number of events: fine
        assert fired == [0, 1, 2, 3, 4]

        sim = Simulator()
        fired = []
        for i in range(5):
            sim.call_at(float(i), lambda i=i: fired.append(i))
        with pytest.raises(SimulationError):
            sim.run(max_events=4)
        # The budget was honoured: the fifth event was never dispatched.
        assert fired == [0, 1, 2, 3]
        assert sim.pending_events == 1

    def test_pending_events_counter_tracks_schedule_cancel_and_run(self):
        sim = Simulator()
        events = [sim.call_at(float(i), lambda: None) for i in range(4)]
        assert sim.pending_events == 4
        Simulator.cancel(events[0])
        assert sim.pending_events == 3
        Simulator.cancel(events[0])  # double-cancel is a no-op
        assert sim.pending_events == 3
        sim.run()
        assert sim.pending_events == 0
        Simulator.cancel(events[1])  # cancelling after processing is a no-op
        assert sim.pending_events == 0

    def test_step_returns_false_when_empty(self):
        sim = Simulator()
        assert sim.step() is False

    def test_processed_events_counter(self):
        sim = Simulator()
        for _ in range(5):
            sim.call_after(1.0, lambda: None)
        sim.run()
        assert sim.processed_events == 5

    def test_advance_to_requires_no_pending_earlier_events(self):
        sim = Simulator()
        sim.call_at(4.0, lambda: None)
        with pytest.raises(SimulationError):
            sim.advance_to(10.0)
        sim.run()
        sim.advance_to(10.0)
        assert sim.now == 10.0
        with pytest.raises(SimulationError):
            sim.advance_to(5.0)

    def test_unhandled_payload_requires_handlers(self):
        from repro.simulation.events import MessageDelivery

        sim = Simulator()
        sim.schedule(1.0, MessageDelivery(sender=1, dest=2, message=object(), sent_at=0.0))
        with pytest.raises(SimulationError):
            sim.run()

    def test_determinism_for_a_given_seed(self):
        values_a, values_b = [], []
        for values in (values_a, values_b):
            sim = Simulator(seed=42)
            for _ in range(10):
                values.append(sim.rng.random())
        assert values_a == values_b

    def test_scheduled_action_payload_runs(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, ScheduledAction(label="go", action=lambda: fired.append(True)))
        sim.run()
        assert fired == [True]


class TestTightenRunHorizon:
    def test_handler_can_close_an_exclusive_window_early(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: (fired.append(1.0), sim.tighten_run_horizon(3.0)))
        sim.call_at(2.0, lambda: fired.append(2.0))
        sim.call_at(3.0, lambda: fired.append(3.0))
        sim.call_at(4.0, lambda: fired.append(4.0))
        sim.run(until=10.0, exclusive=True)
        assert fired == [1.0, 2.0]
        sim.run(until=10.0, exclusive=True)
        assert fired == [1.0, 2.0, 3.0, 4.0]

    def test_tighten_never_widens_the_window(self):
        sim = Simulator()
        fired = []

        def cut_then_try_to_widen():
            sim.tighten_run_horizon(2.0)
            sim.tighten_run_horizon(8.0)

        sim.call_at(1.0, cut_then_try_to_widen)
        sim.call_at(3.0, lambda: fired.append(3.0))
        sim.run(until=10.0, exclusive=True)
        assert fired == []

    def test_strict_horizon_leaves_events_at_the_cut(self):
        sim = Simulator()
        fired = []
        sim.call_at(1.0, lambda: sim.tighten_run_horizon(2.0))
        sim.call_at(2.0, lambda: fired.append(2.0))
        sim.run(until=10.0, exclusive=True)
        assert fired == []


class TestEarliestEventAtOwnerFiltering:
    def test_actions_are_attributed_via_their_label_suffix(self):
        sim = Simulator()
        sim.call_at(4.0, lambda: None, label="release-7")
        sim.call_at(6.0, lambda: None, label="release-3")
        earliest, guard = sim.earliest_event_at({3})
        assert earliest == 6.0
        earliest, _ = sim.earliest_event_at({7})
        assert earliest == 4.0
        earliest, _ = sim.earliest_event_at({1})
        assert earliest is None
        assert guard is None

    def test_unattributable_actions_count_for_every_shard(self):
        sim = Simulator()
        sim.call_at(5.0, lambda: None, label="checkpoint")
        earliest, _ = sim.earliest_event_at({1})
        assert earliest == 5.0
        earliest, _ = sim.earliest_event_at(frozenset())
        assert earliest == 5.0

    def test_timers_are_attributed_to_their_owner(self):
        from repro.simulation.events import TimerExpiry

        sim = Simulator()
        sim.schedule(2.0, TimerExpiry(node=9, timer_id=1, name="retry"))
        sim.schedule(3.0, TimerExpiry(node=4, timer_id=2, name="retry"))
        earliest, _ = sim.earliest_event_at({4})
        assert earliest == 3.0
        earliest, _ = sim.earliest_event_at({9, 4})
        assert earliest == 2.0
        earliest, _ = sim.earliest_event_at({1})
        assert earliest is None

    def test_deliveries_are_attributed_to_their_destination(self):
        sim = Simulator()
        sim.schedule_delivery(7.0, sender=1, dest=2, message="m", sent_at=6.0)
        earliest, _ = sim.earliest_event_at({2})
        assert earliest == 7.0
        earliest, _ = sim.earliest_event_at({1})
        assert earliest is None

    def test_cancelled_entries_are_invisible(self):
        sim = Simulator()
        entry = sim.call_at(1.0, lambda: None, label="release-5")
        sim.call_at(8.0, lambda: None, label="release-5")
        Simulator.cancel(entry)
        earliest, _ = sim.earliest_event_at({5})
        assert earliest == 8.0

    def test_request_entries_report_the_feeder_guard(self):
        sim = Simulator()
        feeder = iter(())
        sim.schedule_request(2.0, (6, 0, 1.0, feeder))
        sim.schedule_request(5.0, (6, 1, 1.0, feeder))
        sim.schedule_request(9.0, (1, 2, 1.0, None))
        earliest, guard = sim.earliest_event_at({6})
        assert earliest == 2.0
        assert guard == 5.0
        earliest, guard = sim.earliest_event_at({1})
        assert earliest == 9.0
        assert guard == 5.0
