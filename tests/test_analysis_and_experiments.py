"""Tests for the analysis formulas and the experiment harness."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import stats, tables, theory
from repro.exceptions import ConfigurationError
from repro.experiments import (
    adaptivity_experiment,
    b_transformation_report,
    behaviour_rule_ablation,
    branch_bound_report,
    compare_algorithms,
    figure2_tables,
    hypercube_subset_report,
    measure_complexity_from_initial,
    run_workload,
    single_failure_probe_cost,
)
from repro.workload.arrivals import serial_round_robin


class TestTheory:
    def test_alpha_recurrence_matches_paper_base_case(self):
        assert theory.alpha_recurrence(1) == 2
        assert theory.alpha_recurrence(2) == 2 * 2 + 3 * 1 + 1  # 8

    def test_alpha_approximation_tracks_recurrence(self):
        for p in range(4, 11):
            exact = theory.alpha_recurrence(p)
            approx = theory.alpha_closed_form_approx(p)
            assert abs(exact - approx) / exact < 0.15

    def test_average_closed_form_values(self):
        assert theory.average_messages_closed_form(16) == pytest.approx(4.25)
        assert theory.average_messages_closed_form(64) == pytest.approx(5.75)

    def test_average_exact_from_recurrence(self):
        assert theory.average_messages_exact(4) == pytest.approx(2.0)
        assert theory.average_messages_exact(16) == pytest.approx(63 / 16)

    def test_worst_case_bounds(self):
        assert theory.worst_case_messages(32) == 6
        assert theory.worst_case_messages_counted(32) == 7
        assert theory.worst_case_messages_counted(2) == 2

    def test_baseline_reference_complexities(self):
        assert theory.centralized_messages() == 3
        assert theory.ricart_agrawala_messages(16) == 30
        assert theory.suzuki_kasami_worst_case(16) == 16
        assert theory.naimi_trehel_worst_case(16) == 16
        assert theory.raymond_worst_case(16) == 16  # 2*d with d=2*log2N

    def test_search_father_worst_probes(self):
        assert theory.search_father_worst_probes(16) == 15
        assert theory.search_father_worst_probes(16, start_phase=3) == 12
        with pytest.raises(ConfigurationError):
            theory.search_father_worst_probes(16, start_phase=9)

    def test_nodes_at_distance_count(self):
        assert theory.expected_nodes_at_distance(4) == 8

    def test_invalid_sizes_rejected(self):
        with pytest.raises(Exception):
            theory.average_messages_closed_form(12)

    @given(p=st.integers(1, 16))
    @settings(max_examples=30)
    def test_alpha_recurrence_is_increasing_and_superlinear(self, p):
        if p >= 2:
            assert theory.alpha_recurrence(p) > 2 * theory.alpha_recurrence(p - 1)


class TestStatsAndTables:
    def test_summary_of_known_sample(self):
        summary = stats.summarize([1, 2, 3, 4, 5])
        assert summary.count == 5
        assert summary.mean == 3
        assert summary.median == 3
        assert summary.minimum == 1 and summary.maximum == 5

    def test_empty_sample(self):
        assert stats.summarize([]).count == 0
        assert stats.mean([]) == 0.0
        assert stats.median([]) == 0.0

    def test_percentile_nearest_rank(self):
        values = list(range(1, 101))
        assert stats.percentile(values, 95) == 95
        assert stats.percentile(values, 0) == 1

    def test_stdev(self):
        assert stats.stdev([2, 4, 4, 4, 5, 5, 7, 9]) == pytest.approx(2.138, abs=1e-3)
        assert stats.stdev([1]) == 0.0

    def test_render_table_alignment_and_title(self):
        text = tables.render_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": 3.25}], title="demo"
        )
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_table_empty(self):
        assert "(no data)" in tables.render_table([])

    def test_render_series(self):
        text = tables.render_series([2, 4], {"measured": [1.0, 2.0], "paper": [1.1, 2.1]}, x_label="n")
        assert "measured" in text and "paper" in text


class TestStructureExperiments:
    def test_figure2_tables_are_valid_structures(self):
        rows = figure2_tables()
        assert [row["n"] for row in rows] == [2, 4, 8, 16]
        assert all(row["valid"] for row in rows)
        sixteen = rows[-1]
        assert sixteen["powers"][1] == 4 and sixteen["powers"][9] == 3

    def test_hypercube_subset_report(self):
        rows = hypercube_subset_report((8, 16))
        assert all(row["is_subset"] for row in rows)
        assert rows[0]["tree_edges"] == 7 and rows[0]["hypercube_edges"] == 12

    def test_b_transformation_report_theorem_holds(self):
        report = b_transformation_report(16)
        assert report["theorem_holds"]
        assert report["boundary_edges"] + report["non_boundary_edges"] == 15

    def test_branch_bound_report(self):
        rows = branch_bound_report((16, 32))
        assert all(row["bound_holds"] for row in rows)


class TestQuantitativeExperiments:
    def test_average_matches_alpha_recurrence_exactly(self):
        """EXP-AVG: the measured mean equals alpha_p / 2**p."""
        for n in (4, 8, 16):
            point = measure_complexity_from_initial(n)
            assert point.measured_mean == pytest.approx(point.predicted_mean_exact)

    def test_worst_case_within_counted_bound(self):
        """EXP-WC: measured maxima stay within log2(N)+2 (all messages counted)."""
        point = measure_complexity_from_initial(16)
        assert point.measured_max <= theory.worst_case_messages_counted(16)
        assert point.measured_max >= theory.worst_case_messages(16)

    def test_comparison_shape_matches_the_introduction(self):
        """EXP-CMP: open-cube beats Raymond and the broadcast algorithms."""
        rows = {row.algorithm: row for row in compare_algorithms(16, requests=32, seed=3)}
        assert rows["open-cube"].mean_messages < rows["raymond"].mean_messages
        assert rows["open-cube"].mean_messages < rows["ricart-agrawala"].mean_messages
        assert rows["open-cube"].mean_messages < rows["suzuki-kasami"].mean_messages
        assert rows["open-cube"].max_messages <= theory.worst_case_messages_counted(16)
        # Naimi-Trehel averages O(log n) too: same ballpark as the open-cube.
        assert rows["naimi-trehel"].mean_messages < rows["raymond"].mean_messages

    def test_adaptivity_experiment_shows_cheaper_steady_state(self):
        result = adaptivity_experiment(16, requests=8, seed=1)
        assert result["open-cube_steady_state"] < result["open-cube_first_request"]
        assert result["open-cube_steady_state"] == 0.0
        assert result["raymond_steady_state"] >= result["open-cube_steady_state"]

    def test_single_failure_probe_cost_within_bounds(self):
        report = single_failure_probe_cost(16, failed_node=9, requester=10)
        assert report["granted"] == 1
        assert 0 < report["test_messages"] <= report["worst_case_probes"]

    def test_behaviour_rule_ablation_is_safe_for_every_rule(self):
        rows = behaviour_rule_ablation(8, requests=16, seed=2)
        assert {row["policy"] for row in rows} == {
            "open-cube",
            "always-transit",
            "always-proxy",
            "raymond-like",
        }
        assert all(row["safety_ok"] and row["liveness_ok"] for row in rows)

    def test_run_workload_serial_flag_controls_attribution(self):
        workload = serial_round_robin(8, spacing=50.0, hold=0.25)
        result = run_workload("open-cube", 8, workload, serial=True)
        assert len(result.messages_per_request) == 8
        assert result.safety_ok and result.liveness_ok

    def test_run_workload_counters_mode_skips_record_based_analysis(self):
        # Regression: the streaming metrics mode keeps no per-message
        # records, so the record-based safety/liveness verdicts must be
        # explicitly "not analysed" (None), never a hollow True/False.
        workload = serial_round_robin(8, spacing=50.0, hold=0.25)
        result = run_workload("open-cube", 8, workload, metrics_detail="counters")
        assert result.safety_ok is None
        assert result.liveness_ok is None
        assert result.analysis_ok is None
        assert result.as_row()["analysis_ok"] is None
        assert result.total_messages > 0
        assert result.cluster.metrics.sent_messages == []

    def test_run_workload_counters_mode_via_cluster_kwargs(self):
        # Back-compat: callers that passed metrics_detail through
        # cluster_kwargs get the same skip-with-marker behaviour.
        workload = serial_round_robin(8, spacing=50.0, hold=0.25)
        result = run_workload(
            "open-cube", 8, workload, cluster_kwargs={"metrics_detail": "counters"}
        )
        assert result.analysis_ok is None
        assert result.cluster.metrics.detail == "counters"

    def test_run_workload_conflicting_metrics_detail_rejected(self):
        from repro.exceptions import ConfigurationError

        workload = serial_round_robin(8, spacing=50.0, hold=0.25)
        with pytest.raises(ConfigurationError, match="conflicting metrics_detail"):
            run_workload(
                "open-cube",
                8,
                workload,
                metrics_detail="full",
                cluster_kwargs={"metrics_detail": "counters"},
            )

    def test_run_workload_full_mode_reports_real_booleans(self):
        workload = serial_round_robin(8, spacing=50.0, hold=0.25)
        result = run_workload("open-cube", 8, workload)
        assert result.safety_ok is True
        assert result.liveness_ok is True
        assert result.analysis_ok is True
        assert result.events > 0
        assert result.run_s >= 0.0 and result.setup_s >= 0.0
