"""Property-based tests: invariants hold over randomly generated workloads."""

from __future__ import annotations

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import theory
from repro.core.builders import build_opencube_cluster
from repro.core.opencube import OpenCubeTree
from repro.simulation.network import ConstantDelay, UniformDelay
from repro.verification.liveness import analyse_liveness
from repro.verification.safety import find_overlaps


@given(
    seed=st.integers(0, 2**32 - 1),
    n_power=st.integers(1, 5),
    requests=st.integers(1, 20),
)
@settings(max_examples=40, deadline=None)
def test_serial_requests_preserve_every_invariant(seed, n_power, requests):
    """Any serial request sequence keeps the open-cube, safety and liveness."""
    n = 2**n_power
    rng = random.Random(seed)
    cluster = build_opencube_cluster(n, seed=seed, delay_model=ConstantDelay(1.0), trace=False)
    time = 1.0
    for _ in range(requests):
        cluster.request_cs(rng.randint(1, n), at=time, hold=0.25)
        time += 50.0
    cluster.run_until_quiescent()
    metrics = cluster.metrics
    assert len(metrics.satisfied_requests()) == requests
    assert not find_overlaps(metrics, end_of_time=cluster.now)
    assert analyse_liveness(metrics).ok
    tree = OpenCubeTree(n, cluster.father_map())
    assert tree.is_valid()
    assert cluster.token_holders() == [tree.root]
    per_request = metrics.messages_per_request()
    assert max(per_request, default=0) <= theory.worst_case_messages_counted(n)


@given(
    seed=st.integers(0, 2**32 - 1),
    n_power=st.integers(2, 5),
    requests=st.integers(2, 25),
)
@settings(max_examples=30, deadline=None)
def test_concurrent_requests_preserve_safety_liveness_and_structure(seed, n_power, requests):
    """Concurrent (overlapping) requests never violate safety or starve."""
    n = 2**n_power
    rng = random.Random(seed)
    cluster = build_opencube_cluster(
        n, seed=seed, delay_model=UniformDelay(0.2, 1.0), trace=False
    )
    time = 1.0
    for _ in range(requests):
        time += rng.uniform(0.5, 6.0)
        cluster.request_cs(rng.randint(1, n), at=time, hold=rng.uniform(0.1, 1.0))
    cluster.run_until_quiescent()
    metrics = cluster.metrics
    assert len(metrics.satisfied_requests()) == requests
    assert not find_overlaps(metrics, end_of_time=cluster.now)
    assert analyse_liveness(metrics).ok
    assert OpenCubeTree(n, cluster.father_map()).is_valid()
    assert len(cluster.token_holders()) == 1


@given(seed=st.integers(0, 2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_non_fifo_channels_do_not_break_the_algorithm(seed):
    """The paper allows out-of-order delivery; the algorithm must cope."""
    n = 16
    rng = random.Random(seed)
    cluster = build_opencube_cluster(
        n, seed=seed, fifo=False, delay_model=UniformDelay(0.1, 2.0), trace=False
    )
    time = 1.0
    for _ in range(15):
        time += rng.uniform(0.5, 4.0)
        cluster.request_cs(rng.randint(1, n), at=time, hold=0.3)
    cluster.run_until_quiescent()
    metrics = cluster.metrics
    assert not find_overlaps(metrics, end_of_time=cluster.now)
    assert analyse_liveness(metrics).ok
    assert OpenCubeTree(n, cluster.father_map()).is_valid()
