"""Behavioural tests of the failure-free open-cube node (Section 3)."""

from __future__ import annotations

import pytest

from repro.core.builders import build_opencube_cluster, build_opencube_nodes
from repro.core.messages import RequestMessage, TokenMessage
from repro.core.opencube import OpenCubeTree
from repro.exceptions import ConfigurationError, ProtocolError
from repro.simulation.network import ConstantDelay

from tests.conftest import assert_run_correct, run_serial_requests


def make_cluster(n, **kwargs):
    kwargs.setdefault("delay_model", ConstantDelay(1.0))
    kwargs.setdefault("seed", 1)
    return build_opencube_cluster(n, **kwargs)


class TestBuilders:
    def test_exactly_one_token_holder(self):
        nodes = build_opencube_nodes(16)
        holders = [node_id for node_id, node in nodes.items() if node.token_here]
        assert holders == [1]

    def test_initial_fathers_match_tree(self):
        nodes = build_opencube_nodes(16)
        tree = OpenCubeTree.initial(16)
        for node_id, node in nodes.items():
            assert node.father == tree.father(node_id)
            assert node.power == tree.power(node_id)

    def test_token_holder_must_be_root(self):
        with pytest.raises(ConfigurationError):
            build_opencube_nodes(8, token_holder=5)

    def test_wrong_tree_size_rejected(self):
        with pytest.raises(ConfigurationError):
            build_opencube_nodes(8, tree=OpenCubeTree.initial(16))


class TestSingleRequests:
    def test_root_enters_immediately_without_messages(self):
        cluster = make_cluster(8)
        cluster.request_cs(1, at=1.0, hold=0.5)
        cluster.run_until_quiescent()
        assert cluster.metrics.total_messages() == 0
        assert len(cluster.metrics.satisfied_requests()) == 1
        assert cluster.token_holders() == [1]

    def test_last_son_request_takes_over_the_token(self):
        # Node 9 is the last son of the root in the 16-cube: pure transit,
        # 1 request + 1 token, no return, node 9 becomes the new root.
        cluster = make_cluster(16)
        cluster.request_cs(9, at=1.0, hold=0.5)
        cluster.run_until_quiescent()
        kinds = cluster.metrics.messages_by_kind
        assert kinds["RequestMessage"] == 1
        assert kinds["TokenMessage"] == 1
        assert cluster.token_holders() == [9]
        assert cluster.node(9).father is None
        assert cluster.node(1).father == 9

    def test_non_last_son_request_borrows_the_token(self):
        # Node 2 is not the last son of 1: the root lends and gets it back.
        cluster = make_cluster(16)
        cluster.request_cs(2, at=1.0, hold=0.5)
        cluster.run_until_quiescent()
        kinds = cluster.metrics.messages_by_kind
        assert kinds["RequestMessage"] == 1
        assert kinds["TokenMessage"] == 2  # loan + return
        assert cluster.token_holders() == [1]
        assert cluster.node(2).father == 1

    def test_leaf_request_through_proxy_chain(self):
        cluster = make_cluster(16)
        cluster.request_cs(10, at=1.0, hold=0.5)
        cluster.run_until_quiescent()
        assert len(cluster.metrics.satisfied_requests()) == 1
        # 10 borrowed through the proxy 9; the structure must stay valid.
        assert OpenCubeTree(16, cluster.father_map()).is_valid()
        assert cluster.token_holders() == [9]

    def test_every_single_request_keeps_structure(self):
        for requester in range(1, 17):
            cluster = make_cluster(16)
            cluster.request_cs(requester, at=1.0, hold=0.25)
            cluster.run_until_quiescent()
            assert len(cluster.metrics.satisfied_requests()) == 1
            tree = OpenCubeTree(16, cluster.father_map())
            assert tree.is_valid(), f"structure broken after request by {requester}"
            assert cluster.token_holders() == [tree.root] or cluster.node(
                tree.root
            ).token_here


class TestSerialWorkloads:
    @pytest.mark.parametrize("n", [2, 4, 8, 16, 32])
    def test_round_robin_preserves_structure_and_properties(self, n):
        cluster = make_cluster(n)
        run_serial_requests(cluster, list(range(1, n + 1)))
        metrics = assert_run_correct(cluster)
        assert len(metrics.satisfied_requests()) == n

    def test_repeated_requests_from_one_node(self):
        cluster = make_cluster(16)
        run_serial_requests(cluster, [16] * 5)
        metrics = assert_run_correct(cluster)
        assert len(metrics.satisfied_requests()) == 5
        # After the first acquisition node 16 is the root: later requests cost 0.
        per_request = metrics.messages_per_request()
        assert per_request[1:] == [0, 0, 0, 0]

    def test_worst_case_bound_on_serial_runs(self):
        from repro.analysis import theory

        cluster = make_cluster(32)
        run_serial_requests(cluster, list(range(1, 33)))
        per_request = cluster.metrics.messages_per_request()
        assert max(per_request) <= theory.worst_case_messages_counted(32)


class TestConcurrentRequests:
    def test_two_concurrent_requests_both_served(self):
        cluster = make_cluster(16)
        cluster.request_cs(10, at=1.0, hold=1.0)
        cluster.request_cs(8, at=1.2, hold=1.0)
        cluster.run_until_quiescent()
        assert_run_correct(cluster)
        assert len(cluster.metrics.satisfied_requests()) == 2

    def test_requests_queue_while_asking(self):
        cluster = make_cluster(16)
        # All sons of the root request at once; the root serialises them.
        for index, node in enumerate((2, 3, 5, 9)):
            cluster.request_cs(node, at=1.0 + 0.01 * index, hold=0.5)
        cluster.run_until_quiescent()
        assert_run_correct(cluster)
        assert len(cluster.metrics.satisfied_requests()) == 4

    def test_local_wish_while_asking_is_queued(self):
        cluster = make_cluster(8)
        cluster.request_cs(6, at=1.0, hold=0.5)
        cluster.request_cs(6, at=1.1, hold=0.5)  # second wish queues locally
        cluster.run_until_quiescent()
        assert_run_correct(cluster)
        assert len(cluster.metrics.satisfied_requests()) == 2


class TestProtocolErrors:
    def test_release_without_holding_raises(self):
        nodes = build_opencube_nodes(4)
        cluster = make_cluster(4)
        with pytest.raises(ProtocolError):
            cluster.node(2).release()
        del nodes

    def test_unexpected_token_raises(self):
        cluster = make_cluster(4)
        with pytest.raises(ProtocolError):
            cluster.node(2).on_message(1, TokenMessage(lender=None))

    def test_request_for_unknown_node_raises(self):
        cluster = make_cluster(4)
        with pytest.raises(ProtocolError):
            cluster.node(1).on_message(2, RequestMessage(requester=99, source=99))

    def test_distance_to_unknown_node_raises(self):
        cluster = make_cluster(4)
        with pytest.raises(ProtocolError):
            cluster.node(1).distance_to(17)

    def test_unbound_node_has_no_environment(self):
        node = build_opencube_nodes(4)[2]
        with pytest.raises(RuntimeError):
            _ = node.env


class TestSnapshot:
    def test_snapshot_contains_paper_variables(self):
        cluster = make_cluster(8)
        snap = cluster.node(3).snapshot()
        for key in ("father", "token_here", "asking", "mandator", "lender", "power"):
            assert key in snap

    def test_counters_track_roles(self):
        cluster = make_cluster(16)
        cluster.request_cs(10, at=1.0, hold=0.5)
        cluster.run_until_quiescent()
        assert cluster.node(9).requests_proxied == 1
        assert cluster.node(10).cs_entries == 1
