"""Tests for the static open-cube combinatorics (Section 2 definitions)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import distances
from repro.exceptions import InvalidTopologyError

SIZES = [2, 4, 8, 16, 32, 64]


class TestNodeCounts:
    def test_powers_of_two_accepted(self):
        for n, p in [(1, 0), (2, 1), (16, 4), (1024, 10)]:
            assert distances.check_node_count(n) == p

    @pytest.mark.parametrize("n", [0, -4, 3, 6, 12, 100])
    def test_non_powers_rejected(self, n):
        with pytest.raises(InvalidTopologyError):
            distances.check_node_count(n)

    def test_non_integer_rejected(self):
        with pytest.raises(InvalidTopologyError):
            distances.check_node_count(2.0)  # type: ignore[arg-type]

    def test_is_power_of_two(self):
        assert distances.is_power_of_two(1)
        assert distances.is_power_of_two(64)
        assert not distances.is_power_of_two(0)
        assert not distances.is_power_of_two(48)


class TestDistance:
    def test_paper_examples_for_16_cube(self):
        # "dist(1,2)=1, dist(1,j)=2 if j=3 or 4, dist(1,j)=3 for j=5..8,
        #  dist(1,j)=4 for j=9..16"
        assert distances.distance(1, 2) == 1
        for j in (3, 4):
            assert distances.distance(1, j) == 2
        for j in range(5, 9):
            assert distances.distance(1, j) == 3
        for j in range(9, 17):
            assert distances.distance(1, j) == 4

    def test_distance_to_self_is_zero(self):
        for node in range(1, 33):
            assert distances.distance(node, node) == 0

    def test_symmetry(self):
        for i in range(1, 17):
            for j in range(1, 17):
                assert distances.distance(i, j) == distances.distance(j, i)

    def test_rejects_labels_below_one(self):
        with pytest.raises(InvalidTopologyError):
            distances.distance(0, 5)

    @given(i=st.integers(1, 1024), j=st.integers(1, 1024), k=st.integers(1, 1024))
    @settings(max_examples=200)
    def test_distance_is_an_ultrametric(self, i, j, k):
        """dist is the order of the smallest common group: an ultrametric."""
        dij = distances.distance(i, j)
        djk = distances.distance(j, k)
        dik = distances.distance(i, k)
        assert dik <= max(dij, djk)

    @given(i=st.integers(1, 256), j=st.integers(1, 256))
    @settings(max_examples=200)
    def test_same_group_iff_distance_bound(self, i, j):
        d = distances.distance(i, j)
        if i != j:
            assert distances.group_of(i, d) == distances.group_of(j, d)
            assert distances.group_of(i, d - 1) != distances.group_of(j, d - 1)

    def test_distance_matrix_matches_scalar(self):
        matrix = distances.distance_matrix(16)
        for i in range(1, 17):
            for j in range(1, 17):
                assert matrix[i - 1][j - 1] == distances.distance(i, j)


class TestGroups:
    def test_paper_group_examples(self):
        # In the 16-open-cube: {1,2} is a 1-group, {1,2,3,4} a 2-group, etc.
        assert distances.group_members(1, 1, 16) == [1, 2]
        assert distances.group_members(3, 2, 16) == [1, 2, 3, 4]
        assert distances.group_members(6, 3, 16) == [1, 2, 3, 4, 5, 6, 7, 8]
        assert distances.group_members(12, 4, 16) == list(range(1, 17))

    @pytest.mark.parametrize("n", SIZES)
    def test_groups_partition_the_nodes(self, n):
        pmax = distances.check_node_count(n)
        for d in range(pmax + 1):
            groups = distances.groups_of_size(d, n)
            flattened = [node for group in groups for node in group]
            assert sorted(flattened) == list(range(1, n + 1))
            assert all(len(group) == 2**d for group in groups)

    def test_all_groups_has_every_order(self):
        groups = distances.all_groups(16)
        assert set(groups.keys()) == {0, 1, 2, 3, 4}

    def test_group_order_out_of_range_rejected(self):
        with pytest.raises(InvalidTopologyError):
            distances.group_members(1, 5, 16)
        with pytest.raises(InvalidTopologyError):
            distances.groups_of_size(-1, 16)


class TestNodesAtDistance:
    @pytest.mark.parametrize("n", SIZES)
    def test_count_is_two_to_d_minus_one(self, n):
        """Section 5: exactly 2^(d-1) nodes lie at distance d from any node."""
        pmax = distances.check_node_count(n)
        for node in range(1, n + 1):
            for d in range(1, pmax + 1):
                assert len(distances.nodes_at_distance(node, d, n)) == 2 ** (d - 1)

    def test_distance_zero_is_the_node_itself(self):
        assert distances.nodes_at_distance(7, 0, 16) == [7]

    @pytest.mark.parametrize("n", [8, 16, 32])
    def test_membership_matches_distance_function(self, n):
        pmax = distances.check_node_count(n)
        for node in (1, n // 2, n):
            for d in range(1, pmax + 1):
                members = set(distances.nodes_at_distance(node, d, n))
                expected = {
                    other
                    for other in range(1, n + 1)
                    if distances.distance(node, other) == d
                }
                assert members == expected

    def test_partition_of_all_other_nodes(self):
        n = 32
        node = 13
        union: set[int] = set()
        for d in range(1, 6):
            at_d = set(distances.nodes_at_distance(node, d, n))
            assert not (union & at_d)
            union |= at_d
        assert union == set(range(1, n + 1)) - {node}


class TestInitialStructure:
    def test_initial_fathers_for_figure_2c(self):
        """Figure 2c: the 8-open-cube."""
        fathers = distances.initial_fathers(8)
        assert fathers == {1: None, 2: 1, 3: 1, 4: 3, 5: 1, 6: 5, 7: 5, 8: 7}

    def test_initial_powers_for_figure_2d(self):
        """Paper: in the 16-open-cube, powers of 1,2,3,5,9 are 4,0,1,2,3."""
        assert distances.initial_power(1, 16) == 4
        assert distances.initial_power(2, 16) == 0
        assert distances.initial_power(3, 16) == 1
        assert distances.initial_power(5, 16) == 2
        assert distances.initial_power(9, 16) == 3

    @pytest.mark.parametrize("n", SIZES)
    def test_father_is_at_distance_power_plus_one(self, n):
        """Proposition 2.1 on the initial structure."""
        for node in range(2, n + 1):
            father = distances.initial_father(node, n)
            assert father is not None
            assert distances.distance(node, father) == distances.initial_power(node, n) + 1

    @pytest.mark.parametrize("n", SIZES)
    def test_node_of_power_p_has_p_sons(self, n):
        fathers = distances.initial_fathers(n)
        sons: dict[int, list[int]] = {node: [] for node in fathers}
        for node, father in fathers.items():
            if father is not None:
                sons[father].append(node)
        for node in fathers:
            son_powers = sorted(distances.initial_power(son, n) for son in sons[node])
            assert son_powers == list(range(distances.initial_power(node, n)))

    def test_hypercube_edge_count(self):
        # The n-hypercube has n/2 * log2(n) edges.
        assert len(distances.hypercube_edges(16)) == 16 // 2 * 4

    @pytest.mark.parametrize("n", SIZES)
    def test_initial_tree_is_subgraph_of_hypercube(self, n):
        """Figure 3: the open-cube is the hypercube minus some links."""
        cube = distances.hypercube_edges(n)
        for node in range(2, n + 1):
            father = distances.initial_father(node, n)
            assert frozenset((node, father)) in cube


class TestBranches:
    def test_iter_branches_covers_every_leaf(self):
        fathers = distances.initial_fathers(16)
        branches = list(distances.iter_branches(fathers))
        leaves = {branch[0] for branch in branches}
        internal = {father for father in fathers.values() if father is not None}
        assert leaves == set(fathers) - internal

    def test_branches_end_at_the_root(self):
        fathers = distances.initial_fathers(32)
        for branch in distances.iter_branches(fathers):
            assert branch[-1] == 1

    @pytest.mark.parametrize("n", SIZES)
    def test_branch_bound_proposition_2_3(self, n):
        fathers = distances.initial_fathers(n)
        powers = {
            node: distances.initial_power(node, n) for node in range(1, n + 1)
        }
        pmax = distances.check_node_count(n)
        for branch in distances.iter_branches(fathers):
            assert distances.branch_bound_holds(branch, powers, pmax)
