"""Tests of the fault-tolerant node: Section 5 scenarios and random runs."""

from __future__ import annotations

import random

import pytest

from repro.core.builders import build_fault_tolerant_cluster
from repro.core.opencube import OpenCubeTree
from repro.simulation.failures import FailurePlanner
from repro.simulation.network import ConstantDelay, UniformDelay
from repro.verification.liveness import analyse_liveness
from repro.verification.safety import crashed_in_critical_section, find_overlaps

from tests.conftest import assert_run_correct, run_serial_requests


def make_cluster(n, **kwargs):
    kwargs.setdefault("delay_model", ConstantDelay(1.0))
    kwargs.setdefault("seed", 1)
    return build_fault_tolerant_cluster(n, **kwargs)


class TestFailureFreeEquivalence:
    """Without failures the FT node must behave exactly like the base node."""

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_serial_round_robin(self, n):
        cluster = make_cluster(n)
        run_serial_requests(cluster, list(range(1, n + 1)))
        metrics = assert_run_correct(cluster)
        assert len(metrics.satisfied_requests()) == n
        # No fault-tolerance machinery should have triggered.
        ft_kinds = {"TestMessage", "AnswerMessage", "EnquiryMessage", "AnomalyMessage"}
        assert metrics.messages_of_kinds(ft_kinds) == 0

    def test_same_message_counts_as_base_algorithm(self):
        from repro.core.builders import build_opencube_cluster

        base = build_opencube_cluster(16, seed=3, delay_model=ConstantDelay(1.0))
        ft = make_cluster(16, seed=3)
        for cluster in (base, ft):
            run_serial_requests(cluster, [10, 4, 16, 7, 1, 12])
        assert (
            base.metrics.messages_per_request() == ft.metrics.messages_per_request()
        )


class TestSingleFailureScenarios:
    def test_failed_proxy_is_bypassed(self):
        """Figure 14/15: node 9 fails, requesters 10 and 12 reconnect."""
        cluster = make_cluster(16)
        cluster.fail_node(9, at=0.5)
        cluster.request_cs(10, at=1.0, hold=0.5)
        cluster.request_cs(12, at=1.1, hold=0.5)
        cluster.run_until_quiescent()
        metrics = cluster.metrics
        assert len(metrics.satisfied_requests()) == 2
        # Both requesters reattached below live nodes.
        assert cluster.node(10).father != 9 or cluster.node(10).father is None
        assert cluster.node(12).father != 9
        assert len(cluster.token_holders()) == 1
        assert metrics.messages_by_kind.get("TestMessage", 0) > 0

    def test_token_holder_crash_triggers_regeneration(self):
        """The root lends the token, the borrower dies in its CS."""
        cluster = make_cluster(16)
        cluster.request_cs(6, at=0.5, hold=5.0)
        cluster.request_cs(11, at=1.0, hold=0.5)
        cluster.simulator.call_at(3.0, lambda: cluster.fail_node(6))
        cluster.run_until_quiescent()
        snaps = cluster.snapshots()
        regenerated = sum(s["tokens_regenerated"] for s in snaps.values())
        assert regenerated == 1
        # Node 11's request is still satisfied after the regeneration.
        granted_nodes = {r.node for r in cluster.metrics.satisfied_requests()}
        assert 11 in granted_nodes
        assert len(cluster.token_holders()) == 1

    def test_token_lost_in_transit_to_crashed_node(self):
        """The token is dropped at a node that crashed before receiving it."""
        cluster = make_cluster(16)
        cluster.request_cs(6, at=0.5, hold=1.0)
        cluster.fail_node(6, at=2.0)  # before the loan can arrive
        cluster.request_cs(11, at=3.0, hold=0.5)
        cluster.run_until_quiescent()
        granted_nodes = {r.node for r in cluster.metrics.satisfied_requests()}
        assert 11 in granted_nodes
        assert len(cluster.token_holders()) == 1

    def test_leaf_failure_costs_nothing_if_nobody_needs_it(self):
        cluster = make_cluster(16)
        cluster.fail_node(16, at=0.5)
        cluster.request_cs(2, at=1.0, hold=0.5)
        cluster.run_until_quiescent()
        metrics = cluster.metrics
        assert len(metrics.satisfied_requests()) == 1
        assert metrics.messages_by_kind.get("TestMessage", 0) == 0

    def test_search_father_probe_counts_within_bound(self):
        from repro.analysis import theory

        cluster = make_cluster(16)
        cluster.fail_node(9, at=0.5)
        cluster.request_cs(10, at=1.0, hold=0.25)
        cluster.run_until_quiescent()
        tests = cluster.metrics.messages_by_kind.get("TestMessage", 0)
        assert 0 < tests <= theory.search_father_worst_probes(16)


class TestRecoveryAndAnomaly:
    def test_recovered_node_reconnects_as_leaf(self):
        cluster = make_cluster(16)
        cluster.request_cs(10, at=1.0, hold=0.5)
        cluster.fail_node(9, at=0.5)
        cluster.recover_node(9, at=40.0)
        cluster.run_until_quiescent()
        node9 = cluster.node(9)
        assert node9.father is not None or node9.token_here
        assert len(cluster.token_holders()) == 1

    def test_recovered_node_can_acquire_again(self):
        cluster = make_cluster(16)
        cluster.fail_node(9, at=0.5)
        cluster.recover_node(9, at=10.0)
        cluster.request_cs(9, at=60.0, hold=0.5)
        cluster.run_until_quiescent()
        granted_nodes = {r.node for r in cluster.metrics.satisfied_requests()}
        assert 9 in granted_nodes

    def test_anomaly_repair_after_recovery(self):
        """Figures 16/17: a stale descendant of a recovered node reattaches."""
        cluster = make_cluster(16)
        # Node 9 fails and recovers; its descendant 13 never noticed.  The
        # recovery happens only after node 10's request has been served (10
        # has then become the root, as in Figure 15), so the recovered node 9
        # reattaches below 10 as a leaf and later detects the anomaly when
        # its stale descendant 13 asks for the token.
        cluster.fail_node(9, at=0.5)
        cluster.request_cs(10, at=1.0, hold=0.5)  # promotes 10 over the failure
        cluster.recover_node(9, at=400.0)
        cluster.request_cs(13, at=500.0, hold=0.5)  # stale father 9
        cluster.run_until_quiescent()
        metrics = cluster.metrics
        granted_nodes = {r.node for r in metrics.satisfied_requests()}
        assert 13 in granted_nodes
        assert metrics.messages_by_kind.get("AnomalyMessage", 0) >= 1
        assert cluster.node(13).father != 9
        assert len(cluster.token_holders()) == 1

    def test_crash_wipes_volatile_state(self):
        cluster = make_cluster(8)
        cluster.request_cs(6, at=1.0, hold=10.0)
        cluster.run(until=5.0)
        node6 = cluster.node(6)
        assert node6.in_critical_section
        cluster.fail_node(6)
        assert not node6.in_critical_section
        assert not node6.token_here
        assert not node6.asking
        assert node6.mandator is None
        assert len(node6.pending) == 0


class TestMultipleFailures:
    def test_burst_of_failures_eventually_recovers(self):
        cluster = make_cluster(32, seed=5)
        planner = FailurePlanner(32, seed=9, protected_nodes=(1,))
        schedule = planner.burst_failures(3, at=5.0, recover_after=100.0)
        schedule.apply(cluster)
        for index, node in enumerate((10, 20, 30, 7)):
            cluster.request_cs(node, at=50.0 + index * 60.0, hold=0.5)
        cluster.run_until_quiescent(max_events=3_000_000)
        metrics = cluster.metrics
        excluded = crashed_in_critical_section(metrics)
        assert not find_overlaps(metrics, end_of_time=cluster.now, exclude_nodes=sorted(excluded))
        assert len(cluster.token_holders()) == 1

    @pytest.mark.parametrize("seed", [15, 20, 23])
    def test_sustained_workload_with_periodic_failures(self, seed):
        cluster = build_fault_tolerant_cluster(
            32, seed=seed, trace=False, delay_model=UniformDelay(0.5, 1.0)
        )
        rng = random.Random(seed * 7)
        time = 0.0
        for _ in range(120):
            time += rng.uniform(3.0, 6.0)
            cluster.request_cs(rng.randint(1, 32), at=time, hold=0.3)
        planner = FailurePlanner(32, seed=seed * 13)
        schedule = planner.periodic_failures(5, start=50.0, spacing=120.0, recover_after=60.0)
        schedule.apply(cluster)
        cluster.run_until_quiescent(max_events=3_000_000)
        metrics = cluster.metrics
        excluded = crashed_in_critical_section(metrics)
        overlaps = find_overlaps(
            metrics, end_of_time=cluster.now, exclude_nodes=sorted(excluded)
        )
        assert not overlaps
        assert len(cluster.token_holders()) == 1
        liveness = analyse_liveness(metrics)
        # Requests whose requester crashed are excused; nearly everything
        # else must have been served.
        assert len(liveness.starved) <= 3

    def test_final_structure_is_open_cube_after_full_recovery(self):
        cluster = make_cluster(16, seed=2)
        cluster.fail_node(9, at=5.0)
        cluster.recover_node(9, at=100.0)
        run_serial_requests(cluster, [10, 13, 9, 2, 16], start=200.0)
        # After every node recovered and the dust settled, the surviving
        # father map must again be a single tree with one token.
        assert len(cluster.token_holders()) == 1
        fathers = cluster.father_map()
        roots = [node for node, father in fathers.items() if father is None]
        assert len(roots) == 1
        tree = OpenCubeTree(16, fathers, validate=False)
        # Every node can reach the root (no cycles, single component).
        for node in range(1, 17):
            assert tree.path_to_root(node)[-1] == roots[0]
