"""Tests for the shared immutable OpenCubeTopology (O(n) construction)."""

from __future__ import annotations

import pickle

import pytest

from repro.core import distances
from repro.core.builders import build_fault_tolerant_nodes, build_opencube_nodes
from repro.core.node import OpenCubeMutexNode
from repro.core.topology import OpenCubeTopology
from repro.exceptions import InvalidTopologyError
from repro.scheme.generic import build_scheme_nodes


class TestTopologyObject:
    def test_dist_matches_definition(self):
        topology = OpenCubeTopology(16)
        for i in range(1, 17):
            for j in range(1, 17):
                assert topology.dist(i, j) == distances.distance(i, j)

    def test_dist_row_matches_matrix_with_leading_placeholder(self):
        topology = OpenCubeTopology(8)
        matrix = distances.distance_matrix(8)
        for i in range(1, 9):
            assert topology.dist_row(i) == [0, *matrix[i - 1]]

    def test_initial_tree_delegates_to_distances(self):
        topology = OpenCubeTopology(16)
        assert topology.initial_fathers() == distances.initial_fathers(16)
        assert topology.initial_father(1) is None
        assert topology.initial_power(1) == 4
        assert list(topology.nodes()) == list(range(1, 17))
        assert 16 in topology and 17 not in topology

    def test_rejects_non_power_of_two(self):
        with pytest.raises(InvalidTopologyError):
            OpenCubeTopology(12)

    def test_immutable(self):
        topology = OpenCubeTopology(8)
        with pytest.raises(AttributeError):
            topology.n = 16

    def test_shared_interning(self):
        assert OpenCubeTopology.shared(64) is OpenCubeTopology.shared(64)
        assert OpenCubeTopology.shared(64) is not OpenCubeTopology.shared(128)

    def test_pickle_round_trips_through_interning_cache(self):
        topology = OpenCubeTopology.shared(32)
        clone = pickle.loads(pickle.dumps(topology))
        assert clone is topology

    def test_equality_is_by_size(self):
        assert OpenCubeTopology(8) == OpenCubeTopology(8)
        assert OpenCubeTopology(8) != OpenCubeTopology(16)
        assert hash(OpenCubeTopology(8)) == hash(OpenCubeTopology(8))


class TestSharedTopologyInBuilders:
    @pytest.mark.parametrize(
        "factory",
        [
            build_opencube_nodes,
            build_fault_tolerant_nodes,
            lambda n: build_scheme_nodes(n, "open-cube"),
        ],
        ids=["failure-free", "fault-tolerant", "generic-scheme"],
    )
    def test_every_node_shares_one_topology_object(self, factory):
        nodes = factory(32)
        topologies = {id(node.topology) for node in nodes.values()}
        assert len(topologies) == 1

    def test_no_per_node_distance_rows_by_default(self):
        nodes = build_opencube_nodes(64)
        assert all(node._dist_row is None for node in nodes.values())

    def test_construction_memory_is_o_n(self):
        # 1024 nodes used to materialise 1024 rows of 1025 ints; now the only
        # O(n) structures are the node dict and the topology-free tree.
        nodes = build_opencube_nodes(1024)
        assert all(node._dist_row is None for node in nodes.values())
        assert len({node.topology for node in nodes.values()}) == 1


class TestNodeDistanceSemantics:
    def test_distance_to_matches_pre_refactor_row(self):
        node = OpenCubeMutexNode(5, 16, father=1, has_token=False)
        row = OpenCubeTopology.shared(16).dist_row(5)
        for other in range(1, 17):
            assert node.distance_to(other) == row[other]

    def test_distance_to_rejects_unknown_node(self):
        from repro.exceptions import ProtocolError

        node = OpenCubeMutexNode(5, 16, father=1, has_token=False)
        with pytest.raises(ProtocolError):
            node.distance_to(17)

    def test_power_uses_bit_distance(self):
        for node_id in range(2, 17):
            father = distances.initial_father(node_id, 16)
            node = OpenCubeMutexNode(node_id, 16, father=father, has_token=False)
            assert node.power == distances.initial_power(node_id, 16)

    def test_dist_property_is_lazy_and_cached(self):
        node = OpenCubeMutexNode(3, 16, father=1, has_token=False)
        assert node._dist_row is None
        row = node.dist
        assert row == OpenCubeTopology.shared(16).dist_row(3)
        assert node.dist is row  # cached, not rebuilt

    def test_explicit_dist_row_opt_in_is_validated(self):
        canonical = OpenCubeTopology.shared(8).dist_row(2)
        node = OpenCubeMutexNode(2, 8, father=1, has_token=False, dist_row=canonical)
        assert node.dist == canonical
        # The historical n-length layout (no leading placeholder) still works.
        node = OpenCubeMutexNode(2, 8, father=1, has_token=False, dist_row=canonical[1:])
        assert node.dist == canonical
        with pytest.raises(InvalidTopologyError):
            OpenCubeMutexNode(2, 8, father=1, has_token=False, dist_row=[9] * 9)

    def test_mismatched_topology_rejected(self):
        with pytest.raises(InvalidTopologyError):
            OpenCubeMutexNode(
                1, 16, father=None, has_token=True, topology=OpenCubeTopology(8)
            )
