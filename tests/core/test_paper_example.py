"""Reproduction of the worked example of Section 3.2 (Figures 6-8).

Initial situation: the 16-open-cube, node 1 has lent the token to node 6
(which is in its critical section).  Nodes 10 and 8 then both request the
critical section; the paper walks through the message exchanges and ends in
the configuration of Figure 8 where node 8 is the root and keeps the token.
"""

from __future__ import annotations

import pytest

from repro.core.builders import build_opencube_cluster
from repro.core.opencube import OpenCubeTree
from repro.simulation.network import ConstantDelay


@pytest.fixture
def example_cluster():
    """16-node cluster; node 6 acquires first (the paper's initial loan)."""
    cluster = build_opencube_cluster(16, seed=0, delay_model=ConstantDelay(1.0))
    # Node 6 is in the critical section long enough for both requests to be
    # in flight, exactly as in the paper's narrative.
    cluster.request_cs(6, at=0.0, hold=8.0)
    return cluster


def test_initial_loan_matches_figure_6(example_cluster):
    cluster = example_cluster
    cluster.run(until=6.0)
    node6 = cluster.node(6)
    assert node6.in_critical_section
    assert node6.lender == 1
    assert cluster.node(1).asking  # the root is waiting for its token back


def test_final_configuration_matches_figure_8(example_cluster):
    cluster = example_cluster
    # The paper satisfies node 10's request before node 8's; ordering of the
    # two outcomes does not change the final tree shape claim (an open-cube
    # rooted at the last served requester).
    cluster.request_cs(10, at=1.0, hold=0.5)
    cluster.request_cs(8, at=1.2, hold=0.5)
    cluster.run_until_quiescent()

    metrics = cluster.metrics
    assert len(metrics.satisfied_requests()) == 3
    fathers = cluster.father_map()
    tree = OpenCubeTree(16, fathers)
    assert tree.is_valid()
    # Figure 8: node 8 ends up as the root holding the token, node 9 is its
    # last son, node 1 hangs below 9, and 10's father is 9.
    assert tree.root == 8
    assert cluster.token_holders() == [8]
    assert fathers[9] == 8
    # The paper's narrative: "send request(8) to father1=9; father1:=8".
    assert fathers[1] == 8
    assert fathers[10] == 9
    assert fathers[7] == 8
    assert fathers[5] == 8
    # Node 8 keeps the token: its lender is itself.
    assert cluster.node(8).lender == 8


def test_intermediate_proxy_and_transit_roles(example_cluster):
    """Node 9 acts as proxy for 10; nodes 7 and 5 act as transit for 8."""
    cluster = example_cluster
    cluster.request_cs(10, at=1.0, hold=0.5)
    cluster.request_cs(8, at=1.2, hold=0.5)
    cluster.run_until_quiescent()
    assert cluster.node(9).requests_proxied >= 1
    assert cluster.node(7).requests_forwarded == 1
    assert cluster.node(5).requests_forwarded == 1
    # Node 7 never became asking on behalf of node 8 (pure transit); node 5
    # proxied exactly once, for node 6's initial request in the set-up.
    assert cluster.node(7).requests_proxied == 0
    assert cluster.node(5).requests_proxied == 1


def test_message_budget_of_the_example(example_cluster):
    """The whole scenario needs few messages: requests, loans and returns."""
    cluster = example_cluster
    cluster.request_cs(10, at=1.0, hold=0.5)
    cluster.request_cs(8, at=1.2, hold=0.5)
    cluster.run_until_quiescent()
    kinds = cluster.metrics.messages_by_kind
    # Requests: 6->5, 5->1 (set-up), 10->9, 9->1, 8->7, 7->5, 5->1, 1->9 = 8.
    # Tokens:   1->5, 5->6 (set-up loan), 6->1 (return), 1->9, 9->10,
    #           10->9 (return), 9->8 = 7.
    assert kinds["RequestMessage"] == 8
    assert kinds["TokenMessage"] == 7
    assert cluster.metrics.total_messages() == 15
