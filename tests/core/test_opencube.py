"""Tests for the OpenCubeTree structure and b-transformations (Section 2)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.opencube import OpenCubeTree
from repro.exceptions import InvalidTopologyError, InvalidTransformationError

SIZES = [2, 4, 8, 16, 32, 64]


class TestConstruction:
    @pytest.mark.parametrize("n", SIZES)
    def test_initial_tree_is_valid(self, n):
        tree = OpenCubeTree.initial(n)
        tree.validate()
        assert tree.root == 1
        assert tree.pmax == n.bit_length() - 1

    def test_figure_2d_structure(self):
        tree = OpenCubeTree.initial(16)
        assert tree.sons(1) == [2, 3, 5, 9]
        assert tree.sons(9) == [10, 11, 13]
        assert tree.father(13) == 9
        assert tree.father(16) == 15

    def test_single_node_tree(self):
        tree = OpenCubeTree.initial(1)
        assert tree.root == 1
        assert tree.power(1) == 0
        assert tree.sons(1) == []

    def test_from_fathers_round_trip(self):
        original = OpenCubeTree.initial(32)
        rebuilt = OpenCubeTree.from_fathers(original.fathers())
        assert rebuilt == original

    def test_rejects_invalid_node_count(self):
        with pytest.raises(InvalidTopologyError):
            OpenCubeTree(6)

    def test_rejects_missing_father_entries(self):
        with pytest.raises(InvalidTopologyError):
            OpenCubeTree(4, {1: None, 2: 1})

    def test_rejects_broken_structure(self):
        # Swapping a non-boundary pair destroys the open-cube (Figure 5).
        with pytest.raises(InvalidTopologyError):
            OpenCubeTree(4, {1: 2, 2: None, 3: 1, 4: 3})

    def test_rejects_self_father(self):
        tree = OpenCubeTree.initial(4)
        with pytest.raises(InvalidTopologyError):
            tree.set_father(2, 2)

    @pytest.mark.parametrize("n", [4, 8, 16, 32])
    def test_rooted_at_every_node_is_valid(self, n):
        for root in range(1, n + 1):
            tree = OpenCubeTree.rooted_at(n, root)
            assert tree.root == root
            assert tree.is_valid()


class TestPowersAndSons:
    def test_paper_power_examples(self):
        tree = OpenCubeTree.initial(16)
        assert tree.power(1) == 4
        assert tree.power(2) == 0
        assert tree.power(3) == 1
        assert tree.power(5) == 2
        assert tree.power(9) == 3

    @pytest.mark.parametrize("n", SIZES)
    def test_node_of_power_p_has_p_sons_with_powers_0_to_p_minus_1(self, n):
        tree = OpenCubeTree.initial(n)
        for node in tree.nodes():
            son_powers = sorted(tree.power(son) for son in tree.sons(node))
            assert son_powers == list(range(tree.power(node)))

    @pytest.mark.parametrize("n", SIZES)
    def test_proposition_2_1(self, n):
        """power(j) == dist(i, j) - 1 whenever j is a son of i."""
        tree = OpenCubeTree.initial(n)
        for node in tree.nodes():
            for son in tree.sons(node):
                assert tree.power(son) == tree.distance(node, son) - 1

    def test_last_son(self):
        tree = OpenCubeTree.initial(16)
        assert tree.last_son(1) == 9
        assert tree.last_son(9) == 13
        assert tree.last_son(2) is None

    def test_boundary_edges_count_equals_internal_nodes(self):
        tree = OpenCubeTree.initial(32)
        # Every node of power > 0 has exactly one last son.
        expected = sum(1 for node in tree.nodes() if tree.power(node) > 0)
        assert len(tree.boundary_edges()) == expected

    def test_corollary_2_1_father_is_unique_qualified_node(self):
        """father(i) is the only j with dist(i,j)=power(i)+1 and power(j)>power(i)."""
        tree = OpenCubeTree.initial(16)
        for node in tree.nodes():
            if tree.father(node) is None:
                continue
            qualified = [
                j
                for j in tree.nodes()
                if j != node
                and tree.distance(node, j) == tree.power(node) + 1
                and tree.power(j) > tree.power(node)
            ]
            assert qualified == [tree.father(node)]


class TestBTransformation:
    def test_boundary_swap_keeps_structure_and_exchanges_powers(self):
        tree = OpenCubeTree.initial(16)
        old_power_father = tree.power(1)
        old_power_son = tree.power(9)
        record = tree.b_transform(9, 1)
        tree.validate()
        assert record.new_grandfather is None
        assert tree.root == 9
        assert tree.power(9) == old_power_son + 1
        assert tree.power(1) == old_power_father - 1
        assert tree.father(1) == 9

    def test_non_boundary_swap_rejected(self):
        """Figure 5: swapping node 1 with its non-last son 2 is illegal."""
        tree = OpenCubeTree.initial(4)
        with pytest.raises(InvalidTransformationError):
            tree.b_transform(2, 1)

    def test_swap_of_non_edge_rejected(self):
        tree = OpenCubeTree.initial(8)
        with pytest.raises(InvalidTransformationError):
            tree.b_transform(4, 1)

    def test_corollary_2_2_groups_unchanged(self):
        """b-transformations never change p-group membership (label blocks)."""
        tree = OpenCubeTree.initial(16)
        tree.b_transform(9, 1)
        # After the swap, (1, 9) is the new boundary edge and can swap back.
        tree.b_transform(1, 9)
        assert tree == OpenCubeTree.initial(16)
        # Distances (hence groups) are label-based and unaffected.
        assert tree.distance(9, 13) == 3
        assert tree.distance(1, 2) == 1
        tree.validate()

    def test_promote_along_branch_makes_leaf_the_root(self):
        tree = OpenCubeTree.initial(16)
        # The chain of last sons from the root is 1 -> 9 -> 13 -> 15 -> 16.
        transformations = tree.promote_along_branch(16)
        assert [t.father for t in transformations] == [15, 13, 9, 1]
        assert tree.root == 16
        tree.validate()

    def test_promote_along_non_boundary_branch_fails(self):
        tree = OpenCubeTree.initial(16)
        with pytest.raises(InvalidTransformationError):
            tree.promote_along_branch(2)

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_random_boundary_swaps_preserve_structure(self, seed):
        """Property: any sequence of b-transformations keeps a valid open-cube."""
        import random

        rng = random.Random(seed)
        tree = OpenCubeTree.initial(16)
        for _ in range(12):
            boundary = sorted(tree.boundary_edges())
            son, father = rng.choice(boundary)
            tree.b_transform(son, father)
            assert tree.is_valid()
        assert sorted(tree.powers().values()) == sorted(
            OpenCubeTree.initial(16).powers().values()
        )

    @given(st.integers(0, 2**32 - 1))
    @settings(max_examples=40, deadline=None)
    def test_random_swaps_preserve_branch_bound(self, seed):
        """Proposition 2.3 keeps holding while the tree evolves."""
        import random

        rng = random.Random(seed)
        tree = OpenCubeTree.initial(32)
        for _ in range(20):
            son, father = rng.choice(sorted(tree.boundary_edges()))
            tree.b_transform(son, father)
        assert tree.diameter_bound_holds()


class TestIncrementalIndex:
    """The children/root/power indexes must stay consistent with the father
    map through raw ``set_father`` updates and b-transformations."""

    def _assert_index_matches_scan(self, tree):
        for node in tree.nodes():
            scanned = sorted(
                child for child in tree.nodes() if tree.father(child) == node
            )
            assert sorted(tree.sons(node)) == scanned

    def test_index_tracks_b_transformations(self):
        tree = OpenCubeTree.initial(16)
        for son, father in [(9, 1), (1, 9), (9, 1)]:
            tree.b_transform(son, father)
            self._assert_index_matches_scan(tree)
        assert tree.root == 9

    def test_index_tracks_raw_set_father(self):
        tree = OpenCubeTree.initial(8)
        # Mimic the distributed algorithm's partial b-transformation: the
        # intermediate state is not an open-cube but the index must follow.
        tree.set_father(5, None)
        with pytest.raises(InvalidTopologyError):
            tree.root  # two roots now
        tree.set_father(1, 5)
        assert tree.root == 5
        self._assert_index_matches_scan(tree)
        assert tree.power(5) == tree.pmax
        assert tree.power(1) == tree.distance(1, 5) - 1

    def test_last_son_and_boundary_edges_match_definitions(self):
        tree = OpenCubeTree.initial(32)
        for node in tree.nodes():
            last = tree.last_son(node)
            if tree.power(node) == 0:
                assert last is None
            else:
                assert last is not None
                assert tree.power(last) == tree.power(node) - 1
        assert all(tree.is_boundary_edge(son, father) for son, father in tree.boundary_edges())

    def test_copy_has_independent_index(self):
        tree = OpenCubeTree.initial(8)
        clone = tree.copy()
        clone.b_transform(5, 1)
        assert tree.sons(1) == [2, 3, 5]
        assert clone.root == 5


class TestPathsAndEdges:
    def test_path_to_root(self):
        tree = OpenCubeTree.initial(16)
        assert tree.path_to_root(16) == [16, 15, 13, 9, 1]
        assert tree.path_to_root(1) == [1]

    def test_depth(self):
        tree = OpenCubeTree.initial(16)
        assert tree.depth(1) == 0
        assert tree.depth(2) == 1
        assert tree.depth(16) == 4

    def test_cycle_detection(self):
        tree = OpenCubeTree.initial(4)
        tree.set_father(1, 4)  # introduces a cycle 1 -> 4 -> 3 -> 1
        with pytest.raises(InvalidTopologyError):
            tree.path_to_root(4)

    def test_edges_and_undirected_edges(self):
        tree = OpenCubeTree.initial(8)
        assert (8, 7) in tree.edges()
        assert frozenset({7, 8}) in tree.undirected_edges()
        assert len(tree.edges()) == 7

    def test_copy_is_independent(self):
        tree = OpenCubeTree.initial(8)
        clone = tree.copy()
        clone.b_transform(5, 1)
        assert tree.root == 1
        assert clone.root == 5

    def test_equality(self):
        assert OpenCubeTree.initial(8) == OpenCubeTree.initial(8)
        assert OpenCubeTree.initial(8) != OpenCubeTree.initial(16)
