"""Scale-report generator tests: self-containment, waterfalls, jsonl input.

The report is a CI artifact meant to archive and render offline forever, so
the load-bearing property is **self-containment**: no scripts, no external
fetches of any kind.  The checked-in bench artifacts are the primary input;
a synthetic document with embedded traces and series exercises the
waterfall and time-series sections that the checked-in artifact predates.
"""

from __future__ import annotations

import importlib.util
import json
import sys
from pathlib import Path

import pytest

from repro.core import messages
from repro.scenarios import ScenarioSpec, WorkloadSpec, run_scenario
from repro.workload.arrivals import poisson_arrivals

REPO = Path(__file__).resolve().parent.parent.parent
REPORT_PATH = REPO / "benchmarks" / "report_scale.py"

_spec = importlib.util.spec_from_file_location("report_scale", REPORT_PATH)
report_scale = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("report_scale", report_scale)
_spec.loader.exec_module(report_scale)

#: Substrings that would make the report depend on the outside world.
FORBIDDEN = ("http://", "https://", "<script", "@import", "url(", "<link", "srcset")


def render_to(tmp_path, *argv):
    out = tmp_path / "report.html"
    assert report_scale.main([*argv, "--out", str(out)]) == 0
    return out.read_text(encoding="utf-8")


class TestCheckedInArtifacts:
    def test_renders_and_is_self_contained(self, tmp_path):
        text = render_to(
            tmp_path,
            "--scale", str(REPO / "BENCH_scale.json"),
            "--service", str(REPO / "BENCH_service.json"),
        )
        for needle in FORBIDDEN:
            assert needle not in text, f"report is not self-contained: {needle!r}"
        for section in (
            "Waiting-time quantiles vs n",
            "Engine throughput trajectory",
            "Fairness heatmap",
            "Per-run time series",
            "Trace waterfalls",
            "Service benchmark",
        ):
            assert section in text
        assert "<svg" in text and "polyline" in text
        # The ±40% machine-noise band around the seed baseline.
        assert "polygon" in text

    def test_jsonl_input(self, tmp_path):
        text = render_to(tmp_path, "--scale", str(REPO / "BENCH_scale.jsonl"))
        for needle in FORBIDDEN:
            assert needle not in text
        assert "Waiting-time quantiles vs n" in text

    def test_missing_service_artifact_is_skipped(self, tmp_path):
        text = render_to(
            tmp_path,
            "--scale", str(REPO / "BENCH_scale.json"),
            "--service", str(tmp_path / "nope.json"),
        )
        assert "Service benchmark" not in text


class TestTraceWaterfall:
    @pytest.fixture()
    def traced_document(self, tmp_path):
        """A tiny real run with sampled traces embedded in the row."""
        messages._request_counter = __import__("itertools").count(1)
        spec = ScenarioSpec(
            algorithm="open-cube",
            n=8,
            seed=5,
            metrics_detail="telemetry",
            telemetry={"trace_sample": 1.0},
            workload=WorkloadSpec(
                "poisson", {"count": 12, "rate": 1.0, "seed": 3, "hold": 0.2}
            ),
        )
        row = run_scenario(spec)
        assert row["traces"]["retained"] >= 1
        path = tmp_path / "traced.json"
        path.write_text(json.dumps({"schema": "bench-scale/v6", "results": [row]}))
        return path

    def test_waterfall_renders_spans_and_hops(self, tmp_path, traced_document):
        text = render_to(tmp_path, "--scale", str(traced_document))
        for needle in FORBIDDEN:
            assert needle not in text
        assert 'class="waterfall"' in text
        assert "critical section" in text
        assert "RequestMessage" in text or "TokenMessage" in text

    def test_waterfall_placeholder_without_traces(self, tmp_path):
        path = tmp_path / "bare.json"
        path.write_text(json.dumps({"results": [{"algorithm": "open-cube", "n": 4}]}))
        text = render_to(tmp_path, "--scale", str(path))
        assert "No embedded traces" in text
