"""Bench-artifact sanity: the scale harness cannot silently lose columns.

CI uploads ``BENCH_scale.json``/``.jsonl`` as artifacts; a refactor of the
scenario engine or the row schema that drops a column would poison every
downstream comparison while the smoke job still exits 0.  This suite runs the
real harness end-to-end at a tiny size (n=64, a couple of seconds) and
schema-checks what came out, then checks the long-run (n=16384) matrix
*structurally* — the cells it would declare — without paying for the run.
"""

from __future__ import annotations

import importlib.util
import itertools
import json
import sys
from pathlib import Path

import pytest

from repro.core import messages
from repro.scenarios import ScenarioSpec, WorkloadSpec, run_scenario

BENCH_PATH = Path(__file__).resolve().parent.parent.parent / "benchmarks" / "bench_scale.py"

_spec = importlib.util.spec_from_file_location("bench_scale", BENCH_PATH)
bench_scale = importlib.util.module_from_spec(_spec)
sys.modules.setdefault("bench_scale", bench_scale)
_spec.loader.exec_module(bench_scale)

#: Columns every result row must carry (bench-scale/v4 core schema).
ROW_COLUMNS = {
    "algorithm", "n", "metrics_detail", "workload", "seed", "requests",
    "requests_granted", "total_messages", "messages_per_request",
    "mean_waiting_time", "safety_ok", "liveness_ok", "analysis_ok", "events",
    "setup_s", "feed_s", "run_s", "events_per_sec", "sent_messages_records",
    "agenda_peak", "streamed", "feed_window", "peak_rss_mb",
}

#: Extra columns every telemetry-mode row must carry since v4.
TELEMETRY_COLUMNS = {
    "waiting_p50", "waiting_p90", "waiting_p99", "quantiles", "online_checks",
    "jain_index", "max_node_starvation_gap", "fairness",
}


@pytest.fixture(scope="module")
def smoke_document(tmp_path_factory):
    """One real harness run at n=64 with every gate enabled."""
    messages._request_counter = itertools.count(1)
    output = tmp_path_factory.mktemp("bench") / "BENCH_scale.json"
    rc = bench_scale.main(
        [
            "--sizes", "64",
            "--shards", "2",
            "--output", str(output),
            "--check-agenda", "--check-safety", "--check-fairness",
            "--check-shards",
        ]
    )
    assert rc == 0, "the smoke sweep must pass its own gates"
    return {
        "document": json.loads(output.read_text()),
        "jsonl": output.with_suffix(".jsonl"),
    }


class TestSmokeArtifactSchema:
    def test_schema_version_and_config(self, smoke_document):
        document = smoke_document["document"]
        assert document["schema"] == "bench-scale/v7"
        assert document["config"]["lossy_network"]["loss_rate"] == (
            bench_scale.LOSSY_LOSS_RATE
        )
        assert document["config"]["sharding"]["shards"] == 2
        assert document["config"]["sharding"]["cores"] >= 1
        config = document["config"]
        assert (
            config["liveness_thresholds"]["poisson"]
            == bench_scale.LIVENESS_THRESHOLDS["poisson"]
        )
        assert config["fairness_floors"] == bench_scale.FAIRNESS_FLOORS
        assert config["jsonl"] == smoke_document["jsonl"].name
        assert document["complexity"], "complexity section must not vanish"

    def test_every_row_carries_the_core_columns(self, smoke_document):
        for row in smoke_document["document"]["results"]:
            missing = ROW_COLUMNS - row.keys()
            assert not missing, (row["algorithm"], sorted(missing))

    def test_telemetry_rows_carry_fairness_and_quantiles(self, smoke_document):
        rows = [
            r for r in smoke_document["document"]["results"]
            if r["metrics_detail"] == "telemetry"
        ]
        assert rows, "the sweep must contain telemetry cells"
        for row in rows:
            missing = TELEMETRY_COLUMNS - row.keys()
            assert not missing, (row["algorithm"], sorted(missing))
            assert 0.0 < row["jain_index"] <= 1.0
            assert row["fairness"]["participants"] > 0
            assert row["safety_ok"] is True and row["liveness_ok"] is True

    def test_hotspot_and_failure_cells_present_with_thresholds(self, smoke_document):
        rows = smoke_document["document"]["results"]
        [hotspot] = [r for r in rows if r.get("label") == "hotspot"]
        assert hotspot["workload"].startswith("hotspot(")
        assert hotspot["liveness_thresholds"] == bench_scale.hotspot_thresholds(
            hotspot["n"], hotspot["requests"]
        )
        assert hotspot["streamed"] is True
        # Deliberately skewed: measurably less fair than the poisson cells.
        poisson_jain = min(
            r["jain_index"] for r in rows
            if r["metrics_detail"] == "telemetry" and r.get("label") is None
        )
        assert hotspot["jain_index"] < poisson_jain

        [failure] = [r for r in rows if r.get("label") == "failure-schedule"]
        assert failure["algorithm"] == "open-cube-ft"
        assert failure["failures"] == 3
        assert failure["liveness_thresholds"] == bench_scale.failure_thresholds(
            failure["n"]
        )

    def test_lossy_network_cell_present_with_fault_columns(self, smoke_document):
        """The v5 cell: open-cube-ft absorbing 1% message loss inside the
        gates, with the loss_rate column and exact fault counters."""
        rows = smoke_document["document"]["results"]
        [lossy] = [r for r in rows if r.get("label") == "lossy-network"]
        assert lossy["algorithm"] == "open-cube-ft"
        assert lossy["n"] == bench_scale.LOSSY_N
        assert lossy["loss_rate"] == bench_scale.LOSSY_LOSS_RATE
        assert lossy["lost_messages"] > 0
        assert lossy["duplicated_messages"] == 0
        assert lossy["blocked_messages"] == 0
        assert lossy["network"]["loss_rate"] == bench_scale.LOSSY_LOSS_RATE
        # The whole point of the cell: loss absorbed, verdicts still true
        # (the smoke fixture's --check-safety/--check-fairness already gate
        # this; the asserts keep the intent readable here).
        assert lossy["safety_ok"] is True and lossy["liveness_ok"] is True
        assert lossy["liveness_thresholds"] == bench_scale.lossy_thresholds(
            lossy["n"]
        )

    def test_sharded_triple_present_with_shard_columns_and_parity(self, smoke_document):
        """The v7 triple: a shards=1 control plus the 2-way classic- and
        seam-window cells, all through the conservative parallel engine,
        aggregates identical, seam batching strictly better."""
        rows = smoke_document["document"]["results"]
        [control] = [r for r in rows if r.get("label") == "shard-control"]
        [classic] = [r for r in rows if r.get("label") == "sharded-classic"]
        [sharded] = [r for r in rows if r.get("label") == "sharded"]
        assert control["shards"] == 1
        assert classic["shards"] == 2 and sharded["shards"] == 2
        assert control["shard_window"] == "seam"
        assert classic["shard_window"] == "classic"
        assert sharded["shard_window"] == "seam"
        for row in (control, classic, sharded):
            assert row["shard_by"] == "range"
            assert row["sync_rounds"] > 0
            assert row["events_per_window"] > 0.0
            assert row["merge_s"] >= 0.0
            assert row["lookahead"] > 0.0
            assert row["streamed"] is True
            # Per-shard grant-gap semantics: the cells must not declare the
            # poisson-class max_grant_gap bound (see build_specs).
            assert not row.get("liveness_thresholds")
        for column in bench_scale.SHARD_PARITY_COLUMNS:
            assert sharded[column] == control[column], column
            assert classic[column] == control[column], column
        # One shard receives no cross traffic: the whole control run is a
        # single seam window.
        assert control["sync_rounds"] == 1
        # The batching claim, within one sweep: seam windows synchronise
        # less and therefore batch more events per window.
        assert sharded["sync_rounds"] <= classic["sync_rounds"]
        assert sharded["events_per_window"] >= classic["events_per_window"]
        # The serial smoke sweep runs the cells in order, so the later rows
        # carry the within-sweep comparison columns.
        for row in (classic, sharded):
            assert row["shard_control_run_s"] == control["run_s"]
            assert row["speedup_vs_shard_control"] > 0.0
        assert sharded["classic_sync_rounds"] == classic["sync_rounds"]
        assert sharded["sync_round_reduction"] >= 1.0
        # Serial (non-triple) rows never grow shard columns — the clean-row
        # schema stays byte-stable across the v5 -> v7 bumps.
        for row in rows:
            if row.get("label") not in ("shard-control", "sharded-classic", "sharded"):
                assert "shards" not in row and "sync_rounds" not in row

    def test_streamed_cells_keep_zero_message_records(self, smoke_document):
        for row in smoke_document["document"]["results"]:
            if row["streamed"]:
                assert row["sent_messages_records"] == 0, row["algorithm"]

    def test_jsonl_stream_matches_results_array(self, smoke_document):
        lines = smoke_document["jsonl"].read_text().splitlines()
        results = smoke_document["document"]["results"]
        assert len(lines) == len(results)
        for line, row in zip(lines, results):
            assert json.loads(line) == row


class TestLongRunMatrixStructure:
    """The n=16384 cells, checked declaratively (no 25-second run in CI)."""

    @pytest.fixture(scope="class")
    def long_specs(self):
        return bench_scale.build_specs([16384])

    def test_counters_control_row_still_declared(self, long_specs):
        [control] = [s for s in long_specs if s.label == "pr3-counters-control"]
        assert control.metrics_detail == "counters"
        assert control.stream is True
        assert control.repeats == 1  # the historical configuration, verbatim

    def test_long_telemetry_cell_has_poisson_thresholds_and_series(self, long_specs):
        [cell] = [
            s for s in long_specs
            if s.algorithm == "open-cube" and s.metrics_detail == "telemetry"
            and s.label is None
        ]
        assert cell.liveness_thresholds == bench_scale.LIVENESS_THRESHOLDS["poisson"]
        assert cell.telemetry.get("series_cadence") == bench_scale.SERIES_CADENCE
        assert cell.workload.params["count"] == 32 * 16384

    def test_hotspot_cell_scales_with_n(self, long_specs):
        [hotspot] = [s for s in long_specs if s.label == "hotspot"]
        assert hotspot.n == 16384
        assert len(hotspot.workload.params["hotspot_nodes"]) == 16384 // 64

    def test_failure_cell_absent_at_long_run_sizes(self, long_specs):
        assert not [s for s in long_specs if s.label == "failure-schedule"]

    def test_lossy_cell_stays_pinned_at_small_n(self, long_specs):
        """The lossy cell never scales with the sweep: larger n under the
        same loss rate breaks safety (fuzzer territory, not a bench gate)."""
        [lossy] = [s for s in long_specs if s.label == "lossy-network"]
        assert lossy.n == bench_scale.LOSSY_N
        assert lossy.network is not None
        assert lossy.network.loss_rate == bench_scale.LOSSY_LOSS_RATE

    def test_shard_triple_declared_at_the_scale_point(self):
        """The full sweep's triple sits at the pinned scale (n=65536),
        control first, classic before seam, so each row's within-sweep
        decoration finds its comparison in sweep order."""
        specs = bench_scale.build_specs(
            [16384], shards=bench_scale.SHARD_SWEEP_SHARDS,
            shard_n=bench_scale.SHARD_SCALE_N,
        )
        labels = ("shard-control", "sharded-classic", "sharded")
        triple = [s for s in specs if s.label in labels]
        assert [s.label for s in triple] == list(labels)
        for spec in triple:
            assert spec.n == bench_scale.SHARD_SCALE_N
            assert spec.workload.params["count"] == 2 * bench_scale.SHARD_SCALE_N
            assert spec.metrics_detail == "telemetry"
            assert spec.stream is True
            assert not spec.liveness_thresholds
            assert not spec.telemetry  # series sampling is serial-engine-only
        assert [s.shards for s in triple] == [
            1, bench_scale.SHARD_SWEEP_SHARDS, bench_scale.SHARD_SWEEP_SHARDS,
        ]
        assert [s.shard_window for s in triple] == ["seam", "classic", "seam"]

    def test_no_shard_cells_without_opt_in(self):
        assert not [
            s for s in bench_scale.build_specs([16384])
            if s.label in ("shard-control", "sharded-classic", "sharded")
        ]


class TestFairnessGate:
    """check_fairness() catches what the acceptance criteria demand."""

    def starved_hotspot_row(self):
        """A real deliberately-starved hotspot run, gated by a tight bound."""
        messages._request_counter = itertools.count(1)
        spec = ScenarioSpec(
            algorithm="open-cube",
            n=16,
            workload=WorkloadSpec(
                "hotspot",
                {"count": 80, "hotspot_nodes": [1, 2], "hotspot_fraction": 0.95,
                 "rate": 1.0, "seed": 3, "hold": 0.2},
            ),
            metrics_detail="telemetry",
            liveness_thresholds={"max_node_starvation_gap": 0.5},
        )
        return run_scenario(spec)

    def test_starved_hotspot_row_fails_the_gate_by_name(self):
        row = self.starved_hotspot_row()
        assert row["liveness_ok"] is False
        problems = bench_scale.check_fairness([row])
        assert len(problems) == 1
        breach_node = row["online_checks"]["threshold_breaches"][0]["node"]
        assert f"node {breach_node}" in problems[0]
        assert "max_node_starvation_gap" in problems[0]
        # ... and the safety gate flags the flipped liveness verdict too.
        assert any("liveness_ok=False" in p for p in bench_scale.check_safety([row]))

    def test_missing_fairness_columns_fail_the_gate(self):
        row = self.starved_hotspot_row()
        row.pop("jain_index")
        row.pop("online_checks")  # only the missing-columns problem remains
        [problem] = bench_scale.check_fairness([row])
        assert "fairness columns missing" in problem

    def test_jain_floor_breach_names_the_least_served_node(self):
        row = {
            "algorithm": "open-cube", "n": 64, "metrics_detail": "telemetry",
            "workload": "poisson(n=64, count=256, rate=2.0)", "requests": 256,
            "requests_granted": 256, "failures": 0,
            "jain_index": 0.05, "max_node_starvation_gap": 1.0,
            "fairness": {"jain_index": 0.05,
                         "min_share": {"node": 9, "share": 0.001}},
        }
        [problem] = bench_scale.check_fairness([row])
        assert "jain_index=0.05" in problem and "node 9" in problem

    def test_counters_rows_are_exempt(self):
        assert bench_scale.check_fairness(
            [{"metrics_detail": "counters", "algorithm": "open-cube", "n": 4096,
              "workload": "poisson", "label": "pr3-counters-control"}]
        ) == []


class TestShardGate:
    """check_shard_parity() catches divergence, missing controls, vacuity,
    and (since v7) a seam cell that synchronises more than classic."""

    def _triple(self):
        base = {
            "algorithm": "open-cube", "n": 256,
            "workload": "poisson(n=256, count=512, rate=2.0)",
            "requests": 512, "requests_granted": 512, "total_messages": 2600,
            "safety_ok": True, "liveness_ok": True, "jain_index": 0.71,
        }
        control = dict(base, label="shard-control", shards=1, sync_rounds=1)
        classic = dict(
            base, label="sharded-classic", shards=2,
            shard_window="classic", sync_rounds=363,
        )
        sharded = dict(
            base, label="sharded", shards=2,
            shard_window="seam", sync_rounds=85,
        )
        return control, classic, sharded

    def test_matching_triple_passes(self):
        assert bench_scale.check_shard_parity(list(self._triple())) == []

    def test_diverging_aggregate_fails_by_name(self):
        control, classic, sharded = self._triple()
        sharded["total_messages"] = 2601
        [problem] = bench_scale.check_shard_parity([control, classic, sharded])
        assert "total_messages=2601" in problem and "2600" in problem

    def test_diverging_classic_cell_fails_too(self):
        control, classic, sharded = self._triple()
        classic["requests_granted"] = 511
        [problem] = bench_scale.check_shard_parity([control, classic, sharded])
        assert "requests_granted=511" in problem and "window=classic" in problem

    def test_seam_spending_more_rounds_than_classic_fails(self):
        control, classic, sharded = self._triple()
        sharded["sync_rounds"] = classic["sync_rounds"] + 1
        [problem] = bench_scale.check_shard_parity([control, classic, sharded])
        assert "sync rounds" in problem and "never synchronise more" in problem

    def test_missing_control_fails(self):
        _, _, sharded = self._triple()
        [problem] = bench_scale.check_shard_parity([sharded])
        assert "no shards=1 control" in problem

    def test_sweep_without_sharded_cells_fails_not_passes_vacuously(self):
        [problem] = bench_scale.check_shard_parity([])
        assert "--shards" in problem
