"""Shared fixtures and helpers for the test-suite."""

from __future__ import annotations

import random

import pytest

from repro.core.builders import build_fault_tolerant_cluster, build_opencube_cluster
from repro.core.opencube import OpenCubeTree
from repro.simulation.network import ConstantDelay
from repro.verification.liveness import analyse_liveness
from repro.verification.safety import crashed_in_critical_section, find_overlaps


def run_serial_requests(cluster, nodes, *, spacing=60.0, hold=0.25, start=1.0):
    """Issue one request per entry of ``nodes``, strictly serially."""
    time = start
    for node in nodes:
        cluster.request_cs(node, at=time, hold=hold)
        time += spacing
    cluster.run_until_quiescent()
    return cluster


def run_random_workload(cluster, *, requests, seed, min_gap, max_gap, hold=0.3):
    """Issue ``requests`` CS requests from random nodes with random gaps."""
    rng = random.Random(seed)
    time = 0.0
    for _ in range(requests):
        time += rng.uniform(min_gap, max_gap)
        cluster.request_cs(rng.randint(1, cluster.n), at=time, hold=hold)
    cluster.run_until_quiescent()
    return cluster


def assert_run_correct(cluster, *, expect_structure=True):
    """Safety + liveness + (optionally) structural checks on a finished run."""
    metrics = cluster.metrics
    excluded = crashed_in_critical_section(metrics)
    overlaps = find_overlaps(metrics, end_of_time=cluster.now, exclude_nodes=sorted(excluded))
    assert not overlaps, f"mutual exclusion violated: {[o.describe() for o in overlaps]}"
    liveness = analyse_liveness(metrics)
    assert liveness.ok, f"{len(liveness.starved)} requests starved"
    if expect_structure and not cluster.failed:
        fathers = cluster.father_map()
        if fathers and len(fathers) == cluster.n:
            tree = OpenCubeTree(cluster.n, fathers)
            assert tree.is_valid()
    return metrics


@pytest.fixture
def cluster16():
    """A 16-node failure-free open-cube cluster with deterministic delays."""
    return build_opencube_cluster(16, seed=1, delay_model=ConstantDelay(1.0))


@pytest.fixture
def ft_cluster16():
    """A 16-node fault-tolerant open-cube cluster."""
    return build_fault_tolerant_cluster(16, seed=1, delay_model=ConstantDelay(1.0))
