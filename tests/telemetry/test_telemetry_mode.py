"""Integration: detail="telemetry" through metrics, runner and scenarios."""

from __future__ import annotations

import itertools

import pytest

from repro.baselines.registry import build_cluster
from repro.core import messages
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_workload
from repro.scenarios import ScenarioSpec, WorkloadSpec
from repro.simulation.metrics import MetricsCollector
from repro.telemetry import TelemetryOptions
from repro.workload.arrivals import poisson_arrivals, poisson_stream


def seeded_run(detail: str, **cluster_kwargs):
    messages._request_counter = itertools.count(1)
    cluster = build_cluster(
        "open-cube", 32, seed=11, trace=False, metrics_detail=detail, **cluster_kwargs
    )
    workload = poisson_arrivals(32, 200, rate=1.0, seed=9, hold=0.2)
    workload.apply(cluster)
    cluster.run_until_quiescent()
    return cluster


class TestTelemetryMetricsMode:
    def test_rejects_unknown_detail_and_misplaced_options(self):
        with pytest.raises(ConfigurationError):
            MetricsCollector(detail="bogus")
        with pytest.raises(ConfigurationError):
            MetricsCollector(detail="counters", telemetry_options={"sketch_growth": 1.1})
        with pytest.raises(ConfigurationError):
            TelemetryOptions.from_dict({"no_such_option": 1})

    def test_summary_matches_full_mode(self):
        """The three detail modes must agree on every summary aggregate."""
        summaries = {
            detail: seeded_run(detail).metrics.summary()
            for detail in ("full", "counters", "telemetry")
        }
        assert summaries["telemetry"] == summaries["full"]
        assert summaries["counters"] == summaries["full"]

    def test_keeps_no_records_at_all(self):
        cluster = seeded_run("telemetry")
        metrics = cluster.metrics
        assert metrics.total_messages() > 500
        assert metrics.sent_messages == []
        assert metrics.requests == {}
        assert metrics.cs_intervals == []
        assert metrics.requests_issued_count == 200
        assert metrics.requests_granted_count == 200

    def test_constant_memory_for_telemetry_state(self):
        """Sketch buckets + open-request maps, never O(requests) lists."""
        cluster = seeded_run("telemetry")
        hub = cluster.metrics.telemetry
        assert hub.waiting_time.count == 200
        assert hub.waiting_time.bucket_count < 200
        assert hub.liveness.pending == 0  # everything drained
        assert hub.safety.occupancy == 0

    def test_quantile_sketch_tracks_the_record_based_distribution(self):
        full = seeded_run("full").metrics
        waits = sorted(
            r.waiting_time for r in full.satisfied_requests() if r.waiting_time is not None
        )
        hub = seeded_run("telemetry").metrics.telemetry
        sketch = hub.waiting_time
        assert sketch.count == len(waits)
        assert sketch.min_value == pytest.approx(waits[0])
        assert sketch.max_value == pytest.approx(waits[-1])
        import math

        for q in (0.5, 0.9, 0.99):
            exact = waits[max(1, math.ceil(q * len(waits))) - 1]
            assert sketch.quantile(q) == pytest.approx(exact, rel=0.03)


class TestRunnerIntegration:
    def test_run_workload_reports_real_verdicts_and_quantiles(self):
        result = run_workload(
            "open-cube",
            32,
            poisson_stream(32, 300, rate=1.0, seed=5, hold=0.2),
            seed=3,
            metrics_detail="telemetry",
        )
        assert result.safety_ok is True
        assert result.liveness_ok is True
        assert result.analysis_ok is True
        assert result.streamed is True
        assert result.requests_granted == 300
        quantiles = result.quantiles
        assert set(quantiles) == {"waiting_time", "cs_hold", "messages_per_request"}
        waiting = quantiles["waiting_time"]
        assert waiting["count"] == 300
        assert 0 < waiting["p50"] <= waiting["p90"] <= waiting["p99"] <= waiting["max"]
        assert result.series is None  # series is opt-in
        assert result.online_checks["safety"]["violations"] == 0

    def test_counters_mode_still_reports_not_analysed(self):
        result = run_workload(
            "open-cube",
            16,
            poisson_arrivals(16, 50, rate=1.0, seed=2, hold=0.2),
            metrics_detail="counters",
        )
        assert result.safety_ok is None
        assert result.liveness_ok is None
        assert result.analysis_ok is None
        assert result.quantiles is None

    def test_series_threads_through_run_workload(self):
        result = run_workload(
            "open-cube",
            16,
            poisson_arrivals(16, 100, rate=1.0, seed=2, hold=0.2),
            metrics_detail="telemetry",
            telemetry={"series_cadence": 10.0, "series_max_samples": 16},
        )
        series = result.series
        assert series is not None
        assert len(series["samples"]) <= 16
        assert series["columns"][0] == "t"
        # Final sample is taken at finalize: event time of the last row
        # reaches the end of the run.
        assert series["samples"][-1][0] == pytest.approx(result.end_time)

    def test_serial_telemetry_reports_real_per_request_stats(self):
        """Serial + telemetry must match full mode's mean/max per request."""
        from repro.workload.arrivals import serial_random

        workload = serial_random(16, 48, seed=7, spacing=60.0, hold=0.25)
        results = {}
        for detail in ("full", "telemetry"):
            messages._request_counter = itertools.count(1)
            results[detail] = run_workload(
                "open-cube", 16, workload, seed=7, serial=True, metrics_detail=detail
            )
        assert results["telemetry"].max_messages_per_request == (
            results["full"].max_messages_per_request
        )
        assert results["telemetry"].max_messages_per_request > 0
        assert results["telemetry"].mean_messages_per_request == pytest.approx(
            results["full"].mean_messages_per_request
        )

    def test_telemetry_options_rejected_outside_telemetry_mode(self):
        with pytest.raises(ConfigurationError):
            run_workload(
                "open-cube",
                8,
                poisson_arrivals(8, 10, rate=1.0, seed=1),
                metrics_detail="full",
                telemetry={"series_cadence": 5.0},
            )


class TestScenarioIntegration:
    def spec(self, **overrides):
        base = dict(
            algorithm="open-cube",
            n=16,
            workload=WorkloadSpec("poisson", {"count": 80, "rate": 1.0, "seed": 4, "hold": 0.2}),
            metrics_detail="telemetry",
            telemetry={"series_cadence": 25.0, "series_max_samples": 8},
            stream=True,
            feed_window=16,
        )
        base.update(overrides)
        return ScenarioSpec(**base)

    def test_spec_round_trips_telemetry_options(self):
        spec = self.spec()
        clone = ScenarioSpec.from_dict(spec.to_dict())
        assert clone == spec
        assert clone.telemetry == {"series_cadence": 25.0, "series_max_samples": 8}

    def test_row_carries_quantiles_series_and_verdicts(self):
        row = self.spec().run().row()
        assert row["safety_ok"] is True
        assert row["liveness_ok"] is True
        assert row["analysis_ok"] is True
        assert row["sent_messages_records"] == 0
        assert row["waiting_p50"] <= row["waiting_p90"] <= row["waiting_p99"]
        assert row["quantiles"]["messages_per_request"]["count"] == 80
        assert len(row["series"]["samples"]) <= 8
        assert row["online_checks"]["starved"] == 0

    def test_row_without_telemetry_has_no_quantile_columns(self):
        row = self.spec(metrics_detail="counters", telemetry={}).run().row()
        assert "waiting_p50" not in row
        assert "quantiles" not in row
        assert "series" not in row
        assert row["safety_ok"] is None
