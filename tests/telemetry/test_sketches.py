"""LogHistogram: accuracy bound, determinism, constant memory."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry.sketches import LogHistogram


def exact_quantile(values: list[float], q: float) -> float:
    """Rank-based reference quantile (same convention as the sketch)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestLogHistogram:
    def test_rejects_bad_growth_and_negative_values(self):
        with pytest.raises(ConfigurationError):
            LogHistogram(1.0)
        sketch = LogHistogram()
        with pytest.raises(ValueError):
            sketch.add(-0.1)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_empty_sketch(self):
        sketch = LogHistogram()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.summary()["count"] == 0
        assert sketch.mean == 0.0

    def test_exact_aggregates(self):
        sketch = LogHistogram()
        values = [0.0, 0.5, 1.5, 300.0, 7.25]
        for v in values:
            sketch.add(v)
        assert sketch.count == len(values)
        assert sketch.min_value == 0.0
        assert sketch.max_value == 300.0
        assert sketch.mean == pytest.approx(sum(values) / len(values))

    @pytest.mark.parametrize("growth", [1.02, 1.05, 1.2])
    def test_quantile_relative_error_bound(self, growth):
        rng = random.Random(42)
        # Log-uniform over six decades: exercises many buckets.
        values = [10 ** rng.uniform(-3, 3) for _ in range(5000)]
        sketch = LogHistogram(growth)
        for v in values:
            sketch.add(v)
        bound = math.sqrt(growth) - 1.0
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = exact_quantile(values, q)
            approx = sketch.quantile(q)
            assert abs(approx - exact) / exact <= bound + 1e-9, (q, exact, approx)

    def test_extreme_quantiles_are_exact(self):
        sketch = LogHistogram()
        values = [3.7, 11.0, 0.2, 950.0]
        for v in values:
            sketch.add(v)
        assert sketch.quantile(0.0) == pytest.approx(min(values))
        assert sketch.quantile(1.0) == pytest.approx(max(values))

    def test_zeros_bucket(self):
        sketch = LogHistogram()
        for _ in range(90):
            sketch.add(0.0)
        for _ in range(10):
            sketch.add(5.0)
        assert sketch.quantile(0.5) == 0.0
        # Within the sketch's relative error bound of the exact answer (5.0).
        assert sketch.quantile(0.95) == pytest.approx(5.0, rel=math.sqrt(sketch.growth) - 1)

    def test_deterministic_and_order_independent_quantiles(self):
        rng = random.Random(7)
        values = [rng.expovariate(0.1) for _ in range(2000)]
        forward = LogHistogram()
        backward = LogHistogram()
        for v in values:
            forward.add(v)
        for v in reversed(values):
            backward.add(v)
        # Bucket counts are a pure function of the multiset: every quantile
        # agrees exactly, whatever the insertion order.
        for q in (0.25, 0.5, 0.9, 0.99):
            assert forward.quantile(q) == backward.quantile(q)
        assert forward.summary(ndigits=12)["p99"] == backward.summary(ndigits=12)["p99"]

    def test_memory_is_bounded_by_dynamic_range_not_count(self):
        sketch = LogHistogram()
        rng = random.Random(1)
        for _ in range(50_000):
            sketch.add(rng.uniform(1.0, 100.0))
        # Two decades at 5% growth is on the order of a hundred buckets.
        assert sketch.bucket_count < 120
        assert sketch.count == 50_000
