"""LogHistogram: accuracy bound, determinism, constant memory."""

from __future__ import annotations

import math
import random

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry.sketches import LogHistogram


def exact_quantile(values: list[float], q: float) -> float:
    """Rank-based reference quantile (same convention as the sketch)."""
    ordered = sorted(values)
    rank = max(1, math.ceil(q * len(ordered)))
    return ordered[rank - 1]


class TestLogHistogram:
    def test_rejects_bad_growth_and_negative_values(self):
        with pytest.raises(ConfigurationError):
            LogHistogram(1.0)
        sketch = LogHistogram()
        with pytest.raises(ValueError):
            sketch.add(-0.1)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)

    def test_empty_sketch(self):
        sketch = LogHistogram()
        assert sketch.quantile(0.5) == 0.0
        assert sketch.summary()["count"] == 0
        assert sketch.mean == 0.0

    def test_exact_aggregates(self):
        sketch = LogHistogram()
        values = [0.0, 0.5, 1.5, 300.0, 7.25]
        for v in values:
            sketch.add(v)
        assert sketch.count == len(values)
        assert sketch.min_value == 0.0
        assert sketch.max_value == 300.0
        assert sketch.mean == pytest.approx(sum(values) / len(values))

    @pytest.mark.parametrize("growth", [1.02, 1.05, 1.2])
    def test_quantile_relative_error_bound(self, growth):
        rng = random.Random(42)
        # Log-uniform over six decades: exercises many buckets.
        values = [10 ** rng.uniform(-3, 3) for _ in range(5000)]
        sketch = LogHistogram(growth)
        for v in values:
            sketch.add(v)
        bound = math.sqrt(growth) - 1.0
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = exact_quantile(values, q)
            approx = sketch.quantile(q)
            assert abs(approx - exact) / exact <= bound + 1e-9, (q, exact, approx)

    def test_extreme_quantiles_are_exact(self):
        sketch = LogHistogram()
        values = [3.7, 11.0, 0.2, 950.0]
        for v in values:
            sketch.add(v)
        assert sketch.quantile(0.0) == pytest.approx(min(values))
        assert sketch.quantile(1.0) == pytest.approx(max(values))

    def test_zeros_bucket(self):
        sketch = LogHistogram()
        for _ in range(90):
            sketch.add(0.0)
        for _ in range(10):
            sketch.add(5.0)
        assert sketch.quantile(0.5) == 0.0
        # Within the sketch's relative error bound of the exact answer (5.0).
        assert sketch.quantile(0.95) == pytest.approx(5.0, rel=math.sqrt(sketch.growth) - 1)

    def test_deterministic_and_order_independent_quantiles(self):
        rng = random.Random(7)
        values = [rng.expovariate(0.1) for _ in range(2000)]
        forward = LogHistogram()
        backward = LogHistogram()
        for v in values:
            forward.add(v)
        for v in reversed(values):
            backward.add(v)
        # Bucket counts are a pure function of the multiset: every quantile
        # agrees exactly, whatever the insertion order.
        for q in (0.25, 0.5, 0.9, 0.99):
            assert forward.quantile(q) == backward.quantile(q)
        assert forward.summary(ndigits=12)["p99"] == backward.summary(ndigits=12)["p99"]

    @pytest.mark.parametrize("growth", [1.02, 1.05, 1.2])
    @pytest.mark.parametrize("seed", [0, 7, 1234])
    def test_error_bound_holds_across_seed_grid(self, growth, seed):
        """The analytic bound is a property, not a lucky seed: grid it."""
        rng = random.Random(seed)
        values = [rng.expovariate(0.05) + 1e-6 for _ in range(3000)]
        sketch = LogHistogram(growth)
        for v in values:
            sketch.add(v)
        bound = math.sqrt(growth) - 1.0
        for q in (0.05, 0.25, 0.5, 0.75, 0.9, 0.99):
            exact = exact_quantile(values, q)
            assert abs(sketch.quantile(q) - exact) / exact <= bound + 1e-9, (
                growth, seed, q,
            )

    @pytest.mark.parametrize("growth", [1.02, 1.05, 1.2])
    def test_error_bound_holds_on_heavy_tails(self, growth):
        """Pareto-ish tails (alpha=1.1, nine decades) stay within the bound."""
        rng = random.Random(99)
        alpha = 1.1
        values = [1.0 / (1.0 - rng.random()) ** (1.0 / alpha) for _ in range(8000)]
        sketch = LogHistogram(growth)
        for v in values:
            sketch.add(v)
        bound = math.sqrt(growth) - 1.0
        for q in (0.5, 0.9, 0.99, 0.999):
            exact = exact_quantile(values, q)
            assert abs(sketch.quantile(q) - exact) / exact <= bound + 1e-9, (growth, q)
        # Heavy tails cost buckets logarithmically, never linearly.
        assert sketch.bucket_count < 12 / math.log(growth)


class TestMerge:
    def split(self, values, chunks):
        return [values[i::chunks] for i in range(chunks)]

    def sketch_of(self, values, growth=1.05):
        sketch = LogHistogram(growth)
        for v in values:
            sketch.add(v)
        return sketch

    def state(self, sketch):
        # Everything except ``total``: the bucket state is an exact pure
        # function of the multiset, the float running sum is compared
        # separately (its last bits depend on addition order).
        return (
            sketch.count,
            sketch.min_value,
            sketch.max_value,
            sketch._zeros,
            dict(sketch._buckets),
        )

    @pytest.mark.parametrize("growth", [1.02, 1.05, 1.2])
    @pytest.mark.parametrize("seed", [1, 42])
    def test_merge_equals_accumulating_everything(self, growth, seed):
        rng = random.Random(seed)
        values = [rng.expovariate(0.2) for _ in range(1500)] + [0.0] * 25
        merged = LogHistogram(growth)
        for chunk in self.split(values, 4):
            merged.merge(self.sketch_of(chunk, growth))
        reference = self.sketch_of(values, growth)
        assert self.state(merged) == self.state(reference)
        assert merged.total == pytest.approx(reference.total, rel=1e-12)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert merged.quantile(q) == reference.quantile(q)

    def test_merge_order_independence(self):
        """Any merge tree over any chunking yields the identical state."""
        rng = random.Random(3)
        values = [10 ** rng.uniform(-2, 4) for _ in range(900)]
        chunks = self.split(values, 3)
        left_fold = self.sketch_of(chunks[0])
        left_fold.merge(self.sketch_of(chunks[1])).merge(self.sketch_of(chunks[2]))
        right_fold = self.sketch_of(chunks[2])
        right_fold.merge(self.sketch_of(chunks[0])).merge(self.sketch_of(chunks[1]))
        assert self.state(left_fold) == self.state(right_fold)
        for q in (0.1, 0.5, 0.9, 0.99):
            assert left_fold.quantile(q) == right_fold.quantile(q)

    def test_merge_empty_and_into_empty(self):
        values = [0.5, 2.0, 8.0]
        target = self.sketch_of(values)
        target.merge(LogHistogram())  # no-op
        assert self.state(target) == self.state(self.sketch_of(values))
        empty = LogHistogram()
        empty.merge(self.sketch_of(values))
        assert self.state(empty) == self.state(self.sketch_of(values))

    def test_merge_rejects_mismatched_growth(self):
        with pytest.raises(ConfigurationError, match="different growth"):
            LogHistogram(1.05).merge(LogHistogram(1.2))

    def test_merge_returns_self_for_chaining(self):
        sketch = LogHistogram()
        assert sketch.merge(LogHistogram()) is sketch


class TestMemory:
    def test_memory_is_bounded_by_dynamic_range_not_count(self):
        sketch = LogHistogram()
        rng = random.Random(1)
        for _ in range(50_000):
            sketch.add(rng.uniform(1.0, 100.0))
        # Two decades at 5% growth is on the order of a hundred buckets.
        assert sketch.bucket_count < 120
        assert sketch.count == 50_000
