"""Unit tests of the causal request/token tracer.

The contract under test: sampling is a pure function of
``(seed, request_id)`` (no RNG state anywhere), the recorder reconstructs
issue → REQUEST hops → token hops → grant → exit from the hook stream it
passively observes, memory stays bounded, the state pickles across the
sharded engine's fork pipe, and the Chrome trace-event export is valid.
"""

from __future__ import annotations

import itertools
import json
import pickle

import pytest

from repro.baselines.registry import build_cluster
from repro.core import messages
from repro.core.messages import RequestMessage, TokenMessage
from repro.exceptions import ConfigurationError
from repro.telemetry import RunTelemetry, TelemetryOptions
from repro.telemetry.tracing import (
    RequestTraceRecorder,
    chrome_trace_events,
    sample_request,
    trace_id_for,
)
from repro.workload.arrivals import poisson_arrivals


class TestSamplingContract:
    def test_sampling_is_pure_and_stable(self):
        decisions = [sample_request(7, rid, 0.3) for rid in range(1, 200)]
        assert decisions == [sample_request(7, rid, 0.3) for rid in range(1, 200)]
        assert any(decisions) and not all(decisions)

    def test_rate_one_samples_everything(self):
        assert all(sample_request(0, rid, 1.0) for rid in range(1, 100))

    def test_different_seeds_sample_different_sets(self):
        a = {rid for rid in range(1, 500) if sample_request(1, rid, 0.2)}
        b = {rid for rid in range(1, 500) if sample_request(2, rid, 0.2)}
        assert a != b

    def test_rate_is_roughly_honoured(self):
        hits = sum(sample_request(3, rid, 0.25) for rid in range(1, 2001))
        assert 350 < hits < 650  # 500 expected; SplitMix64 is well mixed

    def test_trace_ids_are_stable_hex_and_distinct(self):
        ids = {trace_id_for(5, rid) for rid in range(1, 50)}
        assert len(ids) == 49
        for trace_id in ids:
            assert len(trace_id) == 16
            int(trace_id, 16)
        assert trace_id_for(5, 7) == trace_id_for(5, 7)

    def test_invalid_rate_and_limit_rejected(self):
        for rate in (0.0, -0.1, 1.5):
            with pytest.raises(ConfigurationError):
                RequestTraceRecorder(rate)
        with pytest.raises(ConfigurationError):
            RequestTraceRecorder(0.5, limit=0)


class TestRecorderLifecycle:
    def recorder(self, **kwargs):
        recorder = RequestTraceRecorder(1.0, **kwargs)
        recorder.bind_seed(11)
        return recorder

    def test_full_journey_is_reconstructed(self):
        recorder = self.recorder()
        request = RequestMessage(requester=2, source=2)
        token = TokenMessage(lender=1)
        recorder.on_issue(1, 2, 1.0)
        recorder.on_send(1.0, 2, 1, request)
        recorder.on_deliver(1.4, 2, 1, request)
        recorder.on_send(1.5, 1, 2, token)
        recorder.on_deliver(2.0, 1, 2, token)
        recorder.on_grant(1, 2.0)
        recorder.on_cs_exit(2, 2.5)
        recorder.finalize(3.0)
        block = recorder.block()
        assert block["sampled"] == 1 and block["retained"] == 1
        trace = block["traces"][0]
        assert trace["issued_at"] == 1.0
        assert trace["granted_at"] == 2.0
        assert trace["exited_at"] == 2.5
        categories = [hop["category"] for hop in trace["hops"]]
        assert categories == ["request", "token"]
        assert trace["hops"][0]["delivered_at"] == 1.4
        assert trace["hops"][1]["to"] == 2

    def test_dropped_hop_is_marked_not_delivered(self):
        recorder = self.recorder()
        request = RequestMessage(requester=4, source=4)
        recorder.on_issue(1, 4, 0.5)
        recorder.on_send(0.6, 4, 3, request)
        recorder.on_drop(0.6, 4, 3, request, "loss")
        recorder.finalize(5.0)
        hop = recorder.block()["traces"][0]["hops"][0]
        assert hop["dropped"] == "loss"
        assert hop["delivered_at"] is None

    def test_unsampled_traffic_is_ignored(self):
        recorder = RequestTraceRecorder(1e-12)
        recorder.bind_seed(1)
        recorder.on_issue(1, 2, 1.0)
        recorder.on_send(1.0, 2, 1, RequestMessage(requester=2, source=2))
        recorder.on_grant(1, 2.0)
        recorder.on_cs_exit(2, 2.5)
        recorder.finalize(3.0)
        block = recorder.block()
        assert block["sampled"] == 0
        assert block["traces"] == []

    def test_retained_traces_are_capped_and_overflow_counted(self):
        recorder = self.recorder(limit=2)
        for rid in range(1, 6):
            node = rid
            recorder.on_issue(rid, node, float(rid))
            recorder.on_grant(rid, rid + 0.5)
            recorder.on_cs_exit(node, rid + 0.7)
        recorder.finalize(10.0)
        block = recorder.block()
        assert block["sampled"] == 5
        assert block["retained"] == 2
        assert block["truncated"] == 3

    def test_hops_per_trace_are_capped(self):
        recorder = self.recorder(max_hops=3)
        recorder.on_issue(1, 2, 1.0)
        request = RequestMessage(requester=2, source=2)
        for step in range(6):
            recorder.on_send(1.0 + step, 2, 3, request)
        recorder.on_grant(1, 9.0)
        recorder.on_cs_exit(2, 9.5)
        recorder.finalize(10.0)
        trace = recorder.block()["traces"][0]
        assert len(trace["hops"]) == 3
        assert trace["hops_truncated"] == 3

    def test_failure_closes_trace_unfinished(self):
        recorder = self.recorder()
        recorder.on_issue(1, 2, 1.0)
        recorder.on_failure(2, 1.5)
        recorder.finalize(2.0)
        trace = recorder.block()["traces"][0]
        assert trace["failed_at"] == 1.5
        assert trace["granted_at"] is None

    def test_open_trace_is_closed_at_finalize(self):
        recorder = self.recorder()
        recorder.on_issue(1, 2, 1.0)
        recorder.finalize(4.0)
        trace = recorder.block()["traces"][0]
        assert trace["open_at_end"] == 4.0

    def test_merge_is_deterministic_and_recapped(self):
        left, right = self.recorder(limit=3), self.recorder(limit=3)
        for recorder, rids in ((left, (1, 3)), (right, (2, 4))):
            for rid in rids:
                recorder.on_issue(rid, rid, float(rid))
                recorder.on_grant(rid, rid + 0.5)
                recorder.on_cs_exit(rid, rid + 0.7)
            recorder.finalize(10.0)
        left.merge(right)
        block = left.block()
        assert [t["request_id"] for t in block["traces"]] == [1, 2, 3]
        assert block["sampled"] == 4
        assert block["truncated"] == 1

    def test_recorder_pickles_through_the_fork_pipe(self):
        recorder = self.recorder()
        recorder.on_issue(1, 2, 1.0)
        recorder.on_send(1.0, 2, 1, RequestMessage(requester=2, source=2))
        clone = pickle.loads(pickle.dumps(recorder))
        clone.on_deliver(1.5, 2, 1, RequestMessage(requester=2, source=2))
        clone.on_grant(1, 2.0)
        clone.on_cs_exit(2, 2.5)
        clone.finalize(3.0)
        trace = clone.block()["traces"][0]
        assert trace["hops"][0]["delivered_at"] == 1.5


class TestHubIntegration:
    def test_options_round_trip_and_validation(self):
        options = TelemetryOptions.from_dict({"trace_sample": 0.5, "trace_limit": 4})
        assert options.trace_sample == 0.5
        clone = TelemetryOptions.from_dict(options.to_dict())
        assert clone == options
        with pytest.raises(ConfigurationError):
            RunTelemetry({"trace_sample": 2.0})

    def test_hub_without_tracing_has_no_traces_block(self):
        hub = RunTelemetry()
        assert hub.tracing is None
        hub.finalize(1.0, 0)
        assert "traces" not in hub.report()

    def test_hub_report_carries_traces_block(self):
        hub = RunTelemetry({"trace_sample": 1.0})
        hub.tracing.bind_seed(3)
        hub.on_issue(1, 2, 1.0, total_sent=0)
        hub.on_grant(1, 2.0)
        hub.on_cs_enter(2, 2.0)
        hub.on_cs_exit(2, 2.5)
        hub.finalize(3.0, 4)
        block = hub.report()["traces"]
        assert block["sampled"] == 1
        assert block["traces"][0]["granted_at"] == 2.0


class TestChromeExport:
    def run_block(self):
        messages._request_counter = itertools.count(1)
        cluster = build_cluster(
            "open-cube",
            8,
            seed=7,
            trace=False,
            metrics_detail="telemetry",
            telemetry_options={"trace_sample": 1.0},
        )
        poisson_arrivals(8, 24, rate=2.0, seed=3).apply(cluster)
        cluster.run_until_quiescent()
        cluster.metrics.finalize_telemetry(cluster.now)
        return cluster.metrics.telemetry.tracing.block()

    def test_chrome_export_is_valid_and_complete(self):
        block = self.run_block()
        document = chrome_trace_events(block)
        payload = json.loads(json.dumps(document))  # JSON-serialisable
        events = payload["traceEvents"]
        assert events
        for event in events:
            assert event["ph"] in ("M", "X", "i")
            assert "pid" in event and "tid" in event
            if event["ph"] == "X":
                assert event["dur"] >= 0
        # Spans reconstruct a full journey: wait + cs + request/token hops
        # + grant/exit instants for at least one sampled request.
        by_name = {event["name"] for event in events}
        assert {"wait", "cs", "grant", "exit", "process_name"} <= by_name
        categories = {event.get("cat") for event in events}
        assert {"request", "token", "cs"} <= categories

    def test_recorder_chrome_trace_matches_module_exporter(self):
        block = self.run_block()
        recorder = RequestTraceRecorder(1.0)
        recorder.bind_seed(block["seed"])
        assert chrome_trace_events(block) == chrome_trace_events(
            json.loads(json.dumps(block))
        )
