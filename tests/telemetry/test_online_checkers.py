"""Online vs record-based verification parity (the PR's core guarantee).

The same seeded full-mode run must yield identical safety/liveness verdicts
from the record-based checkers (`find_overlaps` / `analyse_liveness`) and
the online ones — both when the online checkers *replay* the records
(`repro.verification.replay_online`) and when they run *live* inside a
telemetry-mode run of the identical scenario.  The negative cases inject a
violation through the metric hooks themselves (the test-only entry point the
simulator uses), so both checker families see the same bogus history.
"""

from __future__ import annotations

import itertools

import pytest

from repro.baselines.registry import build_cluster
from repro.core import messages
from repro.simulation.metrics import MetricsCollector
from repro.verification import (
    OnlineLivenessWatchdog,
    OnlineSafetyChecker,
    analyse_liveness,
    crashed_in_critical_section,
    find_overlaps,
    replay_online,
)
from repro.workload.arrivals import poisson_arrivals


def run_cluster(algorithm: str, n: int, *, detail: str, requests: int, seed: int,
                fail: tuple[int, float, float] | None = None):
    """One seeded run; returns the quiescent cluster."""
    messages._request_counter = itertools.count(1)
    cluster = build_cluster(algorithm, n, seed=seed, trace=False, metrics_detail=detail)
    workload = poisson_arrivals(n, requests, rate=0.5, seed=seed + 1, hold=0.3)
    workload.apply(cluster)
    if fail is not None:
        node, down_at, up_at = fail
        cluster.fail_node(node, at=down_at)
        cluster.recover_node(node, at=up_at)
    cluster.run_until_quiescent()
    return cluster


SCENARIOS = [
    ("open-cube", 16, 60, 3, None),
    ("raymond", 8, 40, 11, None),
    ("open-cube-ft", 8, 24, 7, (3, 20.0, 45.0)),
    ("open-cube-ft", 8, 32, 9, (5, 15.0, 200.0)),
]


class TestReplayParity:
    @pytest.mark.parametrize("algorithm,n,requests,seed,fail", SCENARIOS)
    def test_online_replay_matches_record_based_verdicts(
        self, algorithm, n, requests, seed, fail
    ):
        cluster = run_cluster(
            algorithm, n, detail="full", requests=requests, seed=seed, fail=fail
        )
        metrics = cluster.metrics
        crashed = crashed_in_critical_section(metrics)
        record_safety = not find_overlaps(
            metrics, end_of_time=cluster.now, exclude_nodes=sorted(crashed)
        )
        record_liveness = analyse_liveness(metrics)

        verdicts = replay_online(metrics, end_of_time=cluster.now)
        assert verdicts.safety_ok == record_safety
        assert verdicts.liveness_ok == record_liveness.ok
        assert verdicts.liveness.issued == record_liveness.issued
        assert verdicts.liveness.granted == record_liveness.granted
        assert verdicts.liveness.starved == len(record_liveness.starved)
        assert verdicts.liveness.excused == len(record_liveness.excused)
        assert verdicts.safety.crashed_in_cs == crashed

    @pytest.mark.parametrize("algorithm,n,requests,seed,fail", SCENARIOS)
    def test_live_telemetry_run_matches_record_based_verdicts(
        self, algorithm, n, requests, seed, fail
    ):
        """The live hub on the identical seeded run agrees with the records."""
        full = run_cluster(algorithm, n, detail="full", requests=requests, seed=seed, fail=fail)
        crashed = crashed_in_critical_section(full.metrics)
        record_safety = not find_overlaps(
            full.metrics, end_of_time=full.now, exclude_nodes=sorted(crashed)
        )
        record_liveness = analyse_liveness(full.metrics)

        telemetry_cluster = run_cluster(
            algorithm, n, detail="telemetry", requests=requests, seed=seed, fail=fail
        )
        hub = telemetry_cluster.metrics.telemetry
        hub.finalize(telemetry_cluster.now, telemetry_cluster.metrics._total_sent)
        assert hub.safety.ok == record_safety
        assert hub.liveness.ok == record_liveness.ok
        assert hub.liveness.issued == record_liveness.issued
        assert hub.liveness.granted == record_liveness.granted
        assert hub.liveness.excused == len(record_liveness.excused)


class TestInjectedViolations:
    """Negative cases: both checker families must flag the same bogus history.

    The injection goes through the MetricsCollector record hooks — the exact
    interface the simulator drives — so this is the test-only hook for
    producing a history no correct algorithm would generate.
    """

    def _overlap_history(self, collector: MetricsCollector) -> None:
        collector.record_cs_enter(1, 10.0)
        collector.record_cs_enter(2, 10.5)  # violation: node 1 still inside
        collector.record_cs_exit(1, 11.0)
        collector.record_cs_exit(2, 11.5)

    def test_overlap_flagged_by_both_checkers(self):
        full = MetricsCollector(detail="full")
        self._overlap_history(full)
        assert find_overlaps(full, end_of_time=20.0)

        live = MetricsCollector(detail="telemetry")
        self._overlap_history(live)
        safety = live.telemetry.safety
        assert not safety.ok
        assert safety.violations == 1
        assert safety.max_concurrency == 2
        assert safety.first_violation == (10.5, 2, (1,))

        replayed = replay_online(full, end_of_time=20.0)
        assert not replayed.safety_ok

    def test_back_to_back_intervals_are_not_a_violation(self):
        """Exit and next enter at the same instant must stay legal."""
        full = MetricsCollector(detail="full")
        full.record_cs_enter(1, 1.0)
        full.record_cs_exit(1, 2.0)
        full.record_cs_enter(2, 2.0)
        full.record_cs_exit(2, 3.0)
        assert not find_overlaps(full, end_of_time=5.0)
        assert replay_online(full, end_of_time=5.0).safety_ok

        live = MetricsCollector(detail="telemetry")
        live.record_cs_enter(1, 1.0)
        live.record_cs_exit(1, 2.0)
        live.record_cs_enter(2, 2.0)
        live.record_cs_exit(2, 3.0)
        assert live.telemetry.safety.ok

    def test_starvation_flagged_by_both_checkers(self):
        def starve(collector: MetricsCollector) -> None:
            collector.record_request_issued(1, 4, 1.0)
            collector.record_request_issued(2, 5, 2.0)
            collector.record_request_granted(1, 3.0)
            # Request 2 is never granted and node 5 never crashed.

        full = MetricsCollector(detail="full")
        starve(full)
        assert not analyse_liveness(full).ok

        live = MetricsCollector(detail="telemetry")
        starve(live)
        live.telemetry.finalize(10.0, 0)
        assert not live.telemetry.liveness.ok
        assert live.telemetry.liveness.starved == 1

        assert not replay_online(full, end_of_time=10.0).liveness_ok

    def test_crash_while_waiting_is_excused_by_both_checkers(self):
        def crashed_requester(collector: MetricsCollector) -> None:
            collector.record_request_issued(1, 4, 1.0)
            collector.record_failure(4, 2.0)

        full = MetricsCollector(detail="full")
        crashed_requester(full)
        report = analyse_liveness(full)
        assert report.ok and len(report.excused) == 1

        live = MetricsCollector(detail="telemetry")
        crashed_requester(live)
        live.telemetry.finalize(10.0, 0)
        assert live.telemetry.liveness.ok
        assert live.telemetry.liveness.excused == 1

        assert replay_online(full, end_of_time=10.0).liveness_ok

    def test_crash_inside_cs_is_excused_by_the_safety_checker(self):
        live = MetricsCollector(detail="telemetry")
        live.record_cs_enter(3, 1.0)
        live.record_failure(3, 2.0)
        live.record_cs_enter(5, 4.0)  # after the crash: CS is free again
        live.record_cs_exit(5, 5.0)
        safety = live.telemetry.safety
        assert safety.ok
        assert safety.crashed_in_cs == {3}


class TestWatchdog:
    def test_grant_gap_threshold(self):
        watchdog = OnlineLivenessWatchdog(max_grant_gap=5.0)
        watchdog.on_issue(1, 0, 0.0)
        watchdog.on_grant(1, 2.0)
        watchdog.on_issue(2, 1, 10.0)
        watchdog.on_grant(2, 30.0)  # 20 time units with a pending request
        watchdog.finalize(31.0)
        assert watchdog.starved == 0
        assert watchdog.max_gap == pytest.approx(20.0)
        assert watchdog.max_gap_pending == 1
        assert not watchdog.ok  # the stall tripped the threshold

    def test_idle_time_does_not_count_as_stall(self):
        watchdog = OnlineLivenessWatchdog(max_grant_gap=5.0)
        watchdog.on_issue(1, 0, 0.0)
        watchdog.on_grant(1, 1.0)
        # 100 idle time units with nothing pending, then a quick request.
        watchdog.on_issue(2, 1, 101.0)
        watchdog.on_grant(2, 103.0)
        watchdog.finalize(104.0)
        assert watchdog.ok
        assert watchdog.max_gap == pytest.approx(2.0)

    def test_online_safety_checker_reports(self):
        checker = OnlineSafetyChecker()
        checker.on_enter(1, 1.0)
        assert checker.occupancy == 1
        assert checker.on_exit(1, 2.0) == 1.0
        assert checker.on_exit(1, 2.0) is None  # double exit is harmless
        report = checker.report()
        assert report["ok"] is True and report["violations"] == 0
