"""SeriesSampler: cadence grid, decimation budget, probe wiring."""

from __future__ import annotations

import pytest

from repro.exceptions import ConfigurationError
from repro.telemetry.series import SERIES_COLUMNS, SeriesSampler


class TestSeriesSampler:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SeriesSampler(0.0)
        with pytest.raises(ConfigurationError):
            SeriesSampler(10.0, max_samples=1)

    def test_samples_align_to_the_cadence_grid(self):
        sampler = SeriesSampler(10.0, max_samples=100)
        for t in (0.5, 3.0, 11.0, 12.0, 47.5, 90.0):
            if t >= sampler.due:
                sampler.sample(t, token_holder=None)
        times = [row[0] for row in sampler.rows]
        # 3.0 and 12.0 fall inside an already-sampled window; 0.5, 11.0,
        # 47.5 and 90.0 each cross a fresh boundary.
        assert times == [0.5, 11.0, 47.5, 90.0]
        # After sampling at 47.5 the next boundary is 50, not 57.5: the grid
        # is aligned, so sparse activity cannot drift the sample instants.
        assert sampler.due == 100.0

    def test_decimation_keeps_the_budget_and_doubles_cadence(self):
        sampler = SeriesSampler(1.0, max_samples=8)
        t = 0.0
        for _ in range(64):
            t += 1.0
            if t >= sampler.due:
                sampler.sample(t, token_holder=None)
        assert len(sampler.rows) <= 8
        assert sampler.cadence > 1.0
        assert sampler.decimations >= 1
        times = [row[0] for row in sampler.rows]
        assert times == sorted(times)

    def test_probes_feed_the_columns(self):
        sampler = SeriesSampler(5.0, max_samples=16)
        gauges = {"events": 0, "agenda": 3, "in_flight": 1}
        sampler.bind_probes(
            events_scheduled=lambda: gauges["events"],
            agenda_size=lambda: gauges["agenda"],
            in_flight=lambda: gauges["in_flight"],
        )
        gauges.update(events=120, agenda=7, in_flight=4)
        sampler.sample(5.0, token_holder=2)
        [row] = sampler.rows
        as_dict = dict(zip(SERIES_COLUMNS, row))
        assert as_dict["t"] == 5.0
        assert as_dict["events_sched"] == 120
        assert as_dict["agenda"] == 7
        assert as_dict["in_flight"] == 4
        assert as_dict["token_holder"] == 2
        assert as_dict["events_per_sec"] >= 0.0

    def test_block_shape(self):
        sampler = SeriesSampler(2.0, max_samples=4)
        sampler.sample(2.0, token_holder=None)
        block = sampler.block()
        assert block["columns"] == list(SERIES_COLUMNS)
        assert block["initial_cadence"] == 2.0
        assert len(block["samples"]) == 1
        assert len(block["samples"][0]) == len(SERIES_COLUMNS)
