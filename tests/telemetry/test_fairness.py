"""Fairness accumulator: semantics, parity, and the threshold gates.

The parity classes mirror ``tests/telemetry/test_online_checkers.py``: the
same seeded full-mode run must yield *identical* Jain index / per-node grant
shares / starvation gaps from the records
(``replay_online(..., fairness=True)``) and from the live telemetry-mode run
of the identical scenario — including the fail-stop cases, where a crashed
node must be excused by both sides the same way.
"""

from __future__ import annotations

import itertools

import pytest

from repro.baselines.registry import build_cluster
from repro.core import messages
from repro.exceptions import ConfigurationError
from repro.experiments.runner import run_workload
from repro.simulation.metrics import MetricsCollector
from repro.verification import FairnessTracker, replay_online
from repro.workload.arrivals import hotspot_arrivals, hotspot_stream, poisson_arrivals


class TestFairnessTracker:
    def test_empty_tracker_is_perfectly_fair(self):
        tracker = FairnessTracker()
        tracker.finalize(10.0)
        assert tracker.jain_index == 1.0
        assert tracker.participants == []
        assert tracker.max_starvation_gap() is None
        assert tracker.report()["jain_index"] == 1.0

    def test_uniform_grants_score_one(self):
        tracker = FairnessTracker()
        for rid, node in enumerate((1, 2, 3, 4), start=1):
            tracker.on_issue(node, float(rid))
            tracker.on_grant(node, float(rid) + 0.5)
        tracker.finalize(10.0)
        assert tracker.jain_index == pytest.approx(1.0)
        assert tracker.grant_shares() == {1: 0.25, 2: 0.25, 3: 0.25, 4: 0.25}

    def test_single_winner_scores_one_over_k(self):
        # Four nodes issue, only node 1 is ever granted: Jain = 1/4.
        tracker = FairnessTracker()
        for node in (1, 2, 3, 4):
            tracker.on_issue(node, 1.0)
        for t in (2.0, 3.0, 4.0):
            tracker.on_grant(1, t)
            tracker.on_issue(1, t)
        tracker.finalize(10.0)
        assert tracker.jain_index == pytest.approx(0.25)
        shares = tracker.grant_shares()
        assert shares[1] == 1.0 and shares[2] == 0.0

    def test_starvation_gap_head_restart_and_tail(self):
        tracker = FairnessTracker()
        # Head: issue at 1.0, first grant at 4.0 -> gap 3.
        tracker.on_issue(7, 1.0)
        tracker.on_issue(7, 1.5)  # still pending after the first grant
        tracker.on_grant(7, 4.0)
        # Restart: second grant at 10.0 while pending -> grant-to-grant gap 6.
        tracker.on_grant(7, 10.0)
        # Tail: a fresh request never granted until finalize at 30.0 -> 15.
        tracker.on_issue(7, 15.0)
        tracker.finalize(30.0)
        worst = tracker.max_starvation_gap()
        assert worst == (7, pytest.approx(15.0))
        report = tracker.report()
        assert report["max_node_starvation"]["node"] == 7

    def test_idle_node_never_accrues_starvation(self):
        tracker = FairnessTracker()
        tracker.on_issue(3, 1.0)
        tracker.on_grant(3, 2.0)
        # Nothing pending from t=2 to finalize: no tail gap.
        tracker.finalize(100.0)
        assert tracker.max_starvation_gap() == (3, pytest.approx(1.0))

    def test_crash_excuses_node_from_census_and_open_wait(self):
        tracker = FairnessTracker()
        tracker.on_issue(1, 1.0)
        tracker.on_issue(2, 1.0)
        tracker.on_grant(1, 2.0)
        tracker.on_failure(2, 3.0)  # node 2's open wait is excused
        tracker.finalize(50.0)
        assert tracker.participants == [1]
        assert tracker.jain_index == pytest.approx(1.0)
        # No 47-unit tail gap for the crashed node.
        assert tracker.max_starvation_gap() == (1, pytest.approx(1.0))
        assert tracker.report()["excused_nodes"] == 1

    def test_post_recovery_waits_still_count_in_the_gap(self):
        tracker = FairnessTracker()
        tracker.on_issue(5, 1.0)
        tracker.on_failure(5, 2.0)
        # Recovered and issuing again: real waiting, even though the node
        # stays out of the Jain census.
        tracker.on_issue(5, 10.0)
        tracker.on_grant(5, 18.0)
        tracker.finalize(20.0)
        assert tracker.participants == []
        assert tracker.max_starvation_gap() == (5, pytest.approx(8.0))

    def test_report_is_bounded_and_json_ready(self):
        import json

        tracker = FairnessTracker()
        for node in range(1, 2001):
            tracker.on_issue(node, 1.0)
            tracker.on_grant(node, 2.0)
        tracker.finalize(3.0)
        report = tracker.report()
        json.dumps(report)
        # Scalars and named extremes only — never a 2000-entry vector.
        assert len(json.dumps(report)) < 500


def run_cluster(algorithm: str, n: int, *, detail: str, requests: int, seed: int,
                fail: tuple[int, float, float] | None = None):
    """One seeded run; returns the quiescent cluster (same as the parity file)."""
    messages._request_counter = itertools.count(1)
    cluster = build_cluster(algorithm, n, seed=seed, trace=False, metrics_detail=detail)
    workload = poisson_arrivals(n, requests, rate=0.5, seed=seed + 1, hold=0.3)
    workload.apply(cluster)
    if fail is not None:
        node, down_at, up_at = fail
        cluster.fail_node(node, at=down_at)
        cluster.recover_node(node, at=up_at)
    cluster.run_until_quiescent()
    return cluster


SCENARIOS = [
    ("open-cube", 16, 60, 3, None),
    ("raymond", 8, 40, 11, None),
    ("open-cube-ft", 8, 24, 7, (3, 20.0, 45.0)),
    ("open-cube-ft", 8, 32, 9, (5, 15.0, 200.0)),
]


class TestRecordOnlineParity:
    @pytest.mark.parametrize("algorithm,n,requests,seed,fail", SCENARIOS)
    def test_replayed_fairness_matches_live_telemetry_run(
        self, algorithm, n, requests, seed, fail
    ):
        full = run_cluster(
            algorithm, n, detail="full", requests=requests, seed=seed, fail=fail
        )
        verdicts = replay_online(full.metrics, end_of_time=full.now, fairness=True)
        replayed = verdicts.fairness

        telemetry_cluster = run_cluster(
            algorithm, n, detail="telemetry", requests=requests, seed=seed, fail=fail
        )
        hub = telemetry_cluster.metrics.telemetry
        hub.finalize(telemetry_cluster.now, telemetry_cluster.metrics._total_sent)
        live = hub.fairness

        assert live is not None and replayed is not None
        assert live.jain_index == replayed.jain_index
        assert live.participants == replayed.participants
        assert live.grant_counts() == replayed.grant_counts()
        assert live.grant_shares() == replayed.grant_shares()
        assert live.max_starvation_gap() == replayed.max_starvation_gap()
        assert live.report() == replayed.report()

    @pytest.mark.parametrize("algorithm,n,requests,seed,fail", SCENARIOS)
    def test_fairness_totals_agree_with_record_based_liveness(
        self, algorithm, n, requests, seed, fail
    ):
        """The census totals must match the record world, not just itself."""
        full = run_cluster(
            algorithm, n, detail="full", requests=requests, seed=seed, fail=fail
        )
        verdicts = replay_online(full.metrics, end_of_time=full.now, fairness=True)
        tracker = verdicts.fairness
        granted = [r for r in full.metrics.requests.values() if r.granted_at is not None]
        per_node: dict[int, int] = {}
        for record in granted:
            per_node[record.node] = per_node.get(record.node, 0) + 1
        assert tracker.grant_counts() == per_node

    def test_fail_stop_excuse_parity_through_metric_hooks(self):
        """Injected crash histories excuse the node in both worlds."""

        def history(collector: MetricsCollector) -> None:
            collector.record_request_issued(1, 4, 1.0)
            collector.record_request_issued(2, 5, 2.0)
            collector.record_request_granted(1, 3.0)
            collector.record_failure(5, 4.0)

        live = MetricsCollector(detail="telemetry")
        history(live)
        live.telemetry.finalize(10.0, 0)

        full = MetricsCollector(detail="full")
        history(full)
        verdicts = replay_online(full, end_of_time=10.0, fairness=True)

        assert live.telemetry.fairness.report() == verdicts.fairness.report()
        assert live.telemetry.fairness.participants == [4]


class TestThresholdGates:
    def hotspot_run(self, thresholds, *, detail="telemetry"):
        workload = (
            hotspot_stream(16, 80, hotspot_nodes=[1, 2], hotspot_fraction=0.9,
                           rate=1.0, seed=3, hold=0.2)
            if detail == "telemetry"
            else hotspot_arrivals(16, 80, hotspot_nodes=[1, 2], hotspot_fraction=0.9,
                                  rate=1.0, seed=3, hold=0.2)
        )
        return run_workload(
            "open-cube", 16, workload,
            metrics_detail=detail, liveness_thresholds=thresholds,
        )

    def test_per_node_starvation_breach_names_node_and_gap(self):
        clean = self.hotspot_run(None)
        assert clean.liveness_ok is True
        worst = clean.fairness["max_node_starvation"]

        tight = self.hotspot_run({"max_node_starvation_gap": worst["gap"] / 2})
        assert tight.liveness_ok is False
        assert tight.safety_ok is True  # only the liveness verdict flips
        breaches = tight.online_checks["liveness"]["threshold_breaches"]
        assert len(breaches) == 1
        breach = breaches[0]
        assert breach["threshold"] == "max_node_starvation_gap"
        assert breach["node"] == worst["node"]
        assert breach["observed"] == pytest.approx(worst["gap"])

    def test_min_jain_breach_in_full_mode_replays_records(self):
        result = self.hotspot_run({"min_jain_index": 0.99}, detail="full")
        assert result.liveness_ok is False
        assert result.fairness is not None
        [breach] = result.online_checks["liveness"]["threshold_breaches"]
        assert breach["threshold"] == "min_jain_index"
        assert breach["observed"] == result.fairness["jain_index"]

    def test_max_grant_gap_breach_flows_through_watchdog(self):
        clean = self.hotspot_run(None)
        observed = clean.online_checks["liveness"]["max_grant_gap"]
        tight = self.hotspot_run({"max_grant_gap": observed / 2})
        assert tight.liveness_ok is False
        breaches = tight.online_checks["liveness"]["threshold_breaches"]
        assert breaches[0]["threshold"] == "max_grant_gap"
        assert "node" in breaches[0]

    def test_generous_thresholds_pass(self):
        result = self.hotspot_run(
            {"max_grant_gap": 1e9, "max_node_starvation_gap": 1e9, "min_jain_index": 0.0}
        )
        assert result.liveness_ok is True
        assert "threshold_breaches" not in result.online_checks["liveness"]

    def test_unknown_threshold_key_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown liveness threshold"):
            self.hotspot_run({"max_wait": 1.0})

    def test_counters_mode_rejects_thresholds(self):
        with pytest.raises(ConfigurationError, match="analysed run"):
            self.hotspot_run({"max_grant_gap": 1.0}, detail="counters")

    def test_conflicting_watchdog_gap_rejected(self):
        with pytest.raises(ConfigurationError, match="conflicting max_grant_gap"):
            run_workload(
                "open-cube", 16,
                hotspot_stream(16, 20, hotspot_nodes=[1], rate=1.0, seed=3, hold=0.2),
                metrics_detail="telemetry",
                telemetry={"max_grant_gap": 5.0},
                liveness_thresholds={"max_grant_gap": 9.0},
            )

    def test_fairness_disabled_rejects_per_node_thresholds(self):
        with pytest.raises(ConfigurationError, match="fairness census"):
            run_workload(
                "open-cube", 16,
                hotspot_stream(16, 20, hotspot_nodes=[1], rate=1.0, seed=3, hold=0.2),
                metrics_detail="telemetry",
                telemetry={"fairness": False},
                liveness_thresholds={"min_jain_index": 0.5},
            )

    def test_fairness_can_be_disabled(self):
        result = run_workload(
            "open-cube", 16,
            hotspot_stream(16, 20, hotspot_nodes=[1], rate=1.0, seed=3, hold=0.2),
            metrics_detail="telemetry",
            telemetry={"fairness": False},
        )
        assert result.fairness is None
        assert result.liveness_ok is True
