"""Setup shim so editable installs work without the `wheel` package.

The environment has no network access and no `wheel` distribution, which the
PEP 517 editable build path requires; the legacy `setup.py develop` path used
by ``pip install -e . --no-use-pep517`` only needs setuptools.
"""

from setuptools import setup

setup()
